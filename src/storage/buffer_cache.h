#ifndef MTDB_STORAGE_BUFFER_CACHE_H_
#define MTDB_STORAGE_BUFFER_CACHE_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <string>
#include <unordered_map>

#include "src/obs/metrics.h"
#include "src/platform/mutex.h"

namespace mtdb {

// Models a MySQL-style buffer pool as an LRU set of page ids. The engine maps
// each row access to a page and charges a miss penalty when the page is cold.
// This is what makes the paper's read-routing Options 1/2/3 differ in
// throughput: Option 1 keeps one replica's pool hot for a database's whole
// read working set, while Option 3 spreads the working set across replicas.
class BufferCache {
 public:
  // capacity_pages == 0 disables modeling: every access is a hit.
  explicit BufferCache(size_t capacity_pages);

  BufferCache(const BufferCache&) = delete;
  BufferCache& operator=(const BufferCache&) = delete;

  // Touches a page; returns true on hit. Misses insert the page, evicting
  // the least recently used one when full.
  bool Touch(uint64_t page_id);

  // Registers hit/miss counters under {machine}. Called by the owning
  // engine once at construction; without it the cache only keeps its local
  // atomics.
  void BindMetrics(const std::string& machine);

  int64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  int64_t misses() const { return misses_.load(std::memory_order_relaxed); }
  double HitRate() const;
  size_t Size() const;
  void Clear();

 private:
  size_t capacity_;
  mutable platform::Mutex mu_{"storage/BufferCache::mu"};
  std::list<uint64_t> lru_ MTDB_GUARDED_BY(mu_);  // front = most recent
  std::unordered_map<uint64_t, std::list<uint64_t>::iterator> map_
      MTDB_GUARDED_BY(mu_);
  std::atomic<int64_t> hits_{0};
  std::atomic<int64_t> misses_{0};
  obs::Counter* m_hits_ = nullptr;
  obs::Counter* m_misses_ = nullptr;
};

}  // namespace mtdb

#endif  // MTDB_STORAGE_BUFFER_CACHE_H_
