#include "src/storage/dump.h"

#include <chrono>
#include <thread>

namespace mtdb {

namespace {

// Snapshot of one table's rows; caller must already hold the S lock.
TableDump SnapshotTable(Engine* source, const std::string& db_name,
                        const std::string& table_name,
                        const DumpOptions& options) {
  Table* table = source->GetDatabase(db_name)->GetTable(table_name);
  TableDump dump;
  dump.schema = table->schema();
  for (auto& [pk, stored] : table->ScanAll()) {
    (void)pk;
    dump.max_version = std::max(dump.max_version, stored.version);
    dump.rows.emplace_back(std::move(stored.values), stored.version);
    if (options.per_row_delay_us > 0) {
      std::this_thread::sleep_for(
          std::chrono::microseconds(options.per_row_delay_us));
    }
  }
  return dump;
}

}  // namespace

Result<TableDump> DumpTable(Engine* source, const std::string& db_name,
                            const std::string& table_name,
                            uint64_t dump_txn_id, const DumpOptions& options) {
  MTDB_RETURN_IF_ERROR(source->Begin(dump_txn_id));
  Status lock_status = source->LockTableShared(dump_txn_id, db_name, table_name);
  if (!lock_status.ok()) {
    (void)source->Abort(dump_txn_id);
    return lock_status;
  }
  TableDump dump = SnapshotTable(source, db_name, table_name, options);
  MTDB_RETURN_IF_ERROR(source->Commit(dump_txn_id));
  return dump;
}

Result<DatabaseDump> DumpDatabaseCoarse(Engine* source,
                                        const std::string& db_name,
                                        uint64_t dump_txn_id,
                                        const DumpOptions& options) {
  Database* db = source->GetDatabase(db_name);
  if (db == nullptr) return Status::NotFound("database " + db_name);
  MTDB_RETURN_IF_ERROR(source->Begin(dump_txn_id));
  DatabaseDump dump;
  dump.database_name = db_name;
  // Acquire S locks on every table up front; hold them all until done.
  for (const std::string& table_name : db->TableNames()) {
    Status lock_status =
        source->LockTableShared(dump_txn_id, db_name, table_name);
    if (!lock_status.ok()) {
      (void)source->Abort(dump_txn_id);
      return lock_status;
    }
  }
  for (const std::string& table_name : db->TableNames()) {
    dump.tables.push_back(SnapshotTable(source, db_name, table_name, options));
  }
  MTDB_RETURN_IF_ERROR(source->Commit(dump_txn_id));
  return dump;
}

Status ApplyTableDump(Engine* target, const std::string& db_name,
                      const TableDump& dump) {
  if (!target->HasDatabase(db_name)) {
    MTDB_RETURN_IF_ERROR(target->CreateDatabase(db_name));
  }
  MTDB_RETURN_IF_ERROR(target->CreateTable(db_name, dump.schema));
  return target->BulkInsertVersioned(db_name, dump.schema.name(), dump.rows);
}

Status ApplyDatabaseDump(Engine* target, const DatabaseDump& dump) {
  for (const TableDump& table_dump : dump.tables) {
    MTDB_RETURN_IF_ERROR(ApplyTableDump(target, dump.database_name, table_dump));
  }
  return Status::OK();
}

}  // namespace mtdb
