#include "src/storage/schema.h"

#include <sstream>

namespace mtdb {

int TableSchema::ColumnIndex(const std::string& column_name) const {
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i].name == column_name) return static_cast<int>(i);
  }
  return -1;
}

Status TableSchema::AddIndex(const std::string& index_name,
                             const std::string& column_name) {
  int col = ColumnIndex(column_name);
  if (col < 0) {
    return Status::InvalidArgument("no column " + column_name + " in table " +
                                   name_);
  }
  for (const IndexDef& index : indexes_) {
    if (index.name == index_name) {
      return Status::AlreadyExists("index " + index_name);
    }
  }
  indexes_.push_back(IndexDef{index_name, col});
  return Status::OK();
}

const IndexDef* TableSchema::IndexOnColumn(int column_index) const {
  for (const IndexDef& index : indexes_) {
    if (index.column_index == column_index) return &index;
  }
  return nullptr;
}

Status TableSchema::ValidateRow(const Row& row) const {
  if (row.size() != columns_.size()) {
    return Status::InvalidArgument(
        "row arity " + std::to_string(row.size()) + " != schema arity " +
        std::to_string(columns_.size()) + " for table " + name_);
  }
  for (size_t i = 0; i < row.size(); ++i) {
    const Column& col = columns_[i];
    const Value& v = row[i];
    if (v.is_null()) {
      if (col.not_null || static_cast<int>(i) == primary_key_index_) {
        return Status::InvalidArgument("NULL in NOT NULL column " + col.name);
      }
      continue;
    }
    switch (col.type) {
      case ColumnType::kInt64:
        if (!v.is_int()) {
          return Status::InvalidArgument("type mismatch in column " +
                                         col.name + ": expected INT");
        }
        break;
      case ColumnType::kDouble:
        if (!v.is_numeric()) {
          return Status::InvalidArgument("type mismatch in column " +
                                         col.name + ": expected DOUBLE");
        }
        break;
      case ColumnType::kString:
        if (!v.is_string()) {
          return Status::InvalidArgument("type mismatch in column " +
                                         col.name + ": expected VARCHAR");
        }
        break;
    }
  }
  return Status::OK();
}

std::string TableSchema::ToString() const {
  std::ostringstream out;
  out << name_ << "(";
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (i > 0) out << ", ";
    out << columns_[i].name << " " << ColumnTypeName(columns_[i].type);
    if (static_cast<int>(i) == primary_key_index_) out << " PRIMARY KEY";
  }
  out << ")";
  return out.str();
}

}  // namespace mtdb
