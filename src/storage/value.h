#ifndef MTDB_STORAGE_VALUE_H_
#define MTDB_STORAGE_VALUE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

#include "src/common/result.h"

namespace mtdb {

// SQL column types supported by the engine.
enum class ColumnType {
  kInt64,
  kDouble,
  kString,
};

std::string_view ColumnTypeName(ColumnType type);

// A dynamically typed SQL value: NULL, INT64, DOUBLE, or STRING.
//
// Ordering follows SQL semantics for homogeneous comparisons; NULL sorts
// before everything (used only for index/PK ordering — predicate evaluation
// treats NULL comparisons as false, handled in the expression evaluator).
// Int/double comparisons coerce to double.
class Value {
 public:
  Value() : data_(std::monostate{}) {}
  explicit Value(int64_t v) : data_(v) {}
  explicit Value(double v) : data_(v) {}
  explicit Value(std::string v) : data_(std::move(v)) {}
  explicit Value(const char* v) : data_(std::string(v)) {}

  static Value Null() { return Value(); }

  bool is_null() const { return std::holds_alternative<std::monostate>(data_); }
  bool is_int() const { return std::holds_alternative<int64_t>(data_); }
  bool is_double() const { return std::holds_alternative<double>(data_); }
  bool is_string() const { return std::holds_alternative<std::string>(data_); }

  int64_t AsInt() const { return std::get<int64_t>(data_); }
  double AsDouble() const {
    if (is_int()) return static_cast<double>(std::get<int64_t>(data_));
    return std::get<double>(data_);
  }
  const std::string& AsString() const { return std::get<std::string>(data_); }

  // True when the value is numeric (int or double).
  bool is_numeric() const { return is_int() || is_double(); }

  // Total order used by indexes: NULL < numerics < strings; numerics compare
  // as doubles. Returns <0, 0, >0.
  int Compare(const Value& other) const;

  bool operator==(const Value& other) const { return Compare(other) == 0; }
  bool operator!=(const Value& other) const { return Compare(other) != 0; }
  bool operator<(const Value& other) const { return Compare(other) < 0; }
  bool operator<=(const Value& other) const { return Compare(other) <= 0; }
  bool operator>(const Value& other) const { return Compare(other) > 0; }
  bool operator>=(const Value& other) const { return Compare(other) >= 0; }

  // SQL literal rendering ('quoted' strings, NULL keyword).
  std::string ToString() const;
  // Raw rendering without quotes (for CSV-style output).
  std::string ToDisplayString() const;

  // Approximate in-memory footprint, used for database-size accounting.
  size_t ByteSize() const;

  // Key suitable for building lock identifiers.
  std::string LockKey() const;

  // Wire serialization (used by net::Codec): appends a 1-byte type tag
  // followed by the payload (8-byte little-endian for INT64/DOUBLE, u32
  // length + bytes for STRING, nothing for NULL).
  void EncodeTo(std::string* out) const;
  // Decodes one value from the front of *data, advancing it past the bytes
  // consumed. Rejects truncated input and unknown tags.
  static Result<Value> DecodeFrom(std::string_view* data);

 private:
  std::variant<std::monostate, int64_t, double, std::string> data_;
};

// A row is a flat vector of values, positionally matching a table schema.
using Row = std::vector<Value>;

std::string RowToString(const Row& row);

}  // namespace mtdb

#endif  // MTDB_STORAGE_VALUE_H_
