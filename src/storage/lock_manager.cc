#include "src/storage/lock_manager.h"

#include <algorithm>
#include <chrono>

#include "src/common/clock.h"

namespace mtdb {

std::string_view LockModeName(LockMode mode) {
  switch (mode) {
    case LockMode::kIntentionShared:
      return "IS";
    case LockMode::kIntentionExclusive:
      return "IX";
    case LockMode::kShared:
      return "S";
    case LockMode::kExclusive:
      return "X";
  }
  return "?";
}

namespace {

analysis::TwoPhaseLockingAuditor::Options AuditorOptions(
    const LockManagerOptions& options) {
  analysis::TwoPhaseLockingAuditor::Options auditor_options;
  auditor_options.allow_read_release_at_prepare =
      options.allow_read_release_at_prepare;
  return auditor_options;
}

}  // namespace

LockManager::LockManager(Options options)
    : options_(options), auditor_(AuditorOptions(options)) {
  if (!options_.metrics_label.empty()) {
    auto& registry = obs::MetricsRegistry::Global();
    obs::MetricLabels labels{.machine = options_.metrics_label};
    m_lock_wait_us_ = registry.GetHistogram("mtdb_lock_wait_us", labels);
    m_deadlocks_ = registry.GetCounter("mtdb_deadlock_total", labels);
    m_lock_timeouts_ = registry.GetCounter("mtdb_lock_timeout_total", labels);
  }
}

bool LockManager::ModesCompatible(LockMode a, LockMode b) {
  // Standard multigranularity compatibility matrix.
  static constexpr bool kCompat[4][4] = {
      // IS     IX     S      X
      {true, true, true, false},    // IS
      {true, true, false, false},   // IX
      {true, false, true, false},   // S
      {false, false, false, false}  // X
  };
  return kCompat[static_cast<int>(a)][static_cast<int>(b)];
}

bool LockManager::MaskCompatibleWith(uint8_t held_mask, LockMode mode) {
  for (int m = 0; m < 4; ++m) {
    if ((held_mask & (1u << m)) &&
        !ModesCompatible(static_cast<LockMode>(m), mode)) {
      return false;
    }
  }
  return true;
}

bool LockManager::MaskCovers(uint8_t held_mask, LockMode mode) {
  uint8_t x = ModeBit(LockMode::kExclusive);
  switch (mode) {
    case LockMode::kIntentionShared:
      return held_mask != 0;  // any held mode implies IS rights
    case LockMode::kIntentionExclusive:
      return (held_mask & (ModeBit(LockMode::kIntentionExclusive) | x)) != 0;
    case LockMode::kShared:
      return (held_mask & (ModeBit(LockMode::kShared) | x)) != 0;
    case LockMode::kExclusive:
      return (held_mask & x) != 0;
  }
  return false;
}

bool LockManager::CanGrant(const LockState& state, uint64_t txn_id,
                           LockMode mode, bool is_upgrade) const {
  for (const auto& [holder, mask] : state.holders) {
    if (holder == txn_id) continue;
    if (!MaskCompatibleWith(mask, mode)) return false;
  }
  if (!is_upgrade) {
    // FIFO fairness: a fresh request must not jump over waiting requests.
    for (const WaitRequest* waiter : state.waiters) {
      if (waiter->abandoned || waiter->granted) continue;
      if (waiter->txn_id == txn_id) continue;
      if (!ModesCompatible(waiter->mode, mode)) return false;
    }
  }
  return true;
}

void LockManager::CollectBlockers(
    const LockState& state, const WaitRequest& req,
    std::unordered_set<uint64_t>* blockers) const {
  for (const auto& [holder, mask] : state.holders) {
    if (holder == req.txn_id) continue;
    if (!MaskCompatibleWith(mask, req.mode)) blockers->insert(holder);
  }
  for (const WaitRequest* waiter : state.waiters) {
    if (waiter == &req) break;  // only waiters ahead of us can block us
    if (waiter->abandoned || waiter->granted) continue;
    if (waiter->txn_id == req.txn_id) continue;
    if (!ModesCompatible(waiter->mode, req.mode)) blockers->insert(waiter->txn_id);
  }
}

bool LockManager::WouldDeadlock(uint64_t start_txn) const {
  // DFS over the wait-for graph: edges go from a blocked transaction to the
  // transactions blocking it. A path back to start_txn is a cycle.
  std::vector<uint64_t> stack = {start_txn};
  std::unordered_set<uint64_t> visited;
  bool first = true;
  while (!stack.empty()) {
    uint64_t txn = stack.back();
    stack.pop_back();
    if (!first) {
      if (txn == start_txn) return true;
      if (!visited.insert(txn).second) continue;
    }
    first = false;
    auto wait_it = waiting_on_.find(txn);
    if (wait_it == waiting_on_.end()) continue;
    auto lock_it = locks_.find(wait_it->second);
    if (lock_it == locks_.end()) continue;
    const LockState& state = lock_it->second;
    // Find this txn's wait request to know what blocks it.
    for (const WaitRequest* waiter : state.waiters) {
      if (waiter->txn_id != txn || waiter->abandoned || waiter->granted) {
        continue;
      }
      std::unordered_set<uint64_t> blockers;
      CollectBlockers(state, *waiter, &blockers);
      for (uint64_t b : blockers) stack.push_back(b);
      break;
    }
  }
  return false;
}

Status LockManager::Acquire(uint64_t txn_id, const std::string& resource,
                            LockMode mode) {
  platform::UniqueLock lock(mu_);
  acquire_count_.fetch_add(1, std::memory_order_relaxed);
  LockState& state = locks_[resource];

  auto holder_it = state.holders.find(txn_id);
  bool is_upgrade = holder_it != state.holders.end();
  if (is_upgrade && MaskCovers(holder_it->second, mode)) {
    return Status::OK();
  }
  // Audit before granting: a shrinking-phase transaction must not widen its
  // lock set, whether the request is served immediately or after a wait.
  if (options_.audit_strict_2pl) auditor_.OnAcquire(txn_id, resource);

  if (CanGrant(state, txn_id, mode, is_upgrade)) {
    state.holders[txn_id] |= ModeBit(mode);
    held_[txn_id].insert(resource);
    return Status::OK();
  }

  // Must wait. Upgrades wait at the front of the queue so that readers
  // draining away unblocks them before any new writer.
  WaitRequest request{txn_id, mode};
  if (is_upgrade) {
    state.waiters.push_front(&request);
  } else {
    state.waiters.push_back(&request);
  }
  waiting_on_[txn_id] = resource;

  if (WouldDeadlock(txn_id)) {
    deadlock_count_.fetch_add(1, std::memory_order_relaxed);
    obs::Increment(m_deadlocks_);
    waiting_on_.erase(txn_id);
    auto it = std::find(state.waiters.begin(), state.waiters.end(), &request);
    if (it != state.waiters.end()) state.waiters.erase(it);
    GrantWaiters(state);
    cv_.NotifyAll();
    return Status::Deadlock("txn " + std::to_string(txn_id) +
                            " chosen as deadlock victim on " + resource);
  }

  auto deadline = std::chrono::steady_clock::now() +
                  std::chrono::microseconds(options_.lock_timeout_us);
  int64_t wait_start_us = NowMicros();
  while (!request.granted &&
         cv_.WaitUntil(lock, deadline) != std::cv_status::timeout) {
  }
  bool granted = request.granted;  // final re-check, still under mu_
  // Charged only on the blocking path, so the histogram measures contention,
  // not the fast-grant no-wait common case.
  obs::Observe(m_lock_wait_us_, NowMicros() - wait_start_us);
  waiting_on_.erase(txn_id);
  if (!granted) {
    timeout_count_.fetch_add(1, std::memory_order_relaxed);
    obs::Increment(m_lock_timeouts_);
    request.abandoned = true;
    auto it = std::find(state.waiters.begin(), state.waiters.end(), &request);
    if (it != state.waiters.end()) state.waiters.erase(it);
    GrantWaiters(state);
    cv_.NotifyAll();
    return Status::LockTimeout("txn " + std::to_string(txn_id) +
                               " timed out waiting for " + resource);
  }
  // GrantWaiters() already installed us as holder.
  held_[txn_id].insert(resource);
  return Status::OK();
}

void LockManager::GrantWaiters(LockState& state) {
  // Grant from the front while requests remain compatible with holders.
  // Granting stops at the first blocked request to preserve FIFO order.
  while (!state.waiters.empty()) {
    WaitRequest* request = state.waiters.front();
    if (request->abandoned) {
      state.waiters.pop_front();
      continue;
    }
    bool compatible = true;
    for (const auto& [holder, mask] : state.holders) {
      if (holder == request->txn_id) continue;
      if (!MaskCompatibleWith(mask, request->mode)) {
        compatible = false;
        break;
      }
    }
    if (!compatible) break;
    state.holders[request->txn_id] |= ModeBit(request->mode);
    request->granted = true;
    state.waiters.pop_front();
  }
}

void LockManager::ReleaseLocked(uint64_t txn_id, bool read_locks_only) {
  auto held_it = held_.find(txn_id);
  if (held_it == held_.end()) return;
  std::vector<std::string> to_forget;
  for (const std::string& resource : held_it->second) {
    auto lock_it = locks_.find(resource);
    if (lock_it == locks_.end()) continue;
    LockState& state = lock_it->second;
    auto holder_it = state.holders.find(txn_id);
    if (holder_it == state.holders.end()) continue;
    if (read_locks_only) {
      holder_it->second &= static_cast<uint8_t>(
          ~(ModeBit(LockMode::kShared) | ModeBit(LockMode::kIntentionShared)));
      if (holder_it->second == 0) {
        state.holders.erase(holder_it);
        to_forget.push_back(resource);
      }
    } else {
      state.holders.erase(holder_it);
      to_forget.push_back(resource);
    }
    GrantWaiters(state);
    if (state.holders.empty() && state.waiters.empty()) {
      locks_.erase(lock_it);
    }
  }
  if (read_locks_only) {
    for (const std::string& resource : to_forget) {
      held_it->second.erase(resource);
    }
    if (held_it->second.empty()) held_.erase(held_it);
  } else {
    held_.erase(held_it);
  }
  cv_.NotifyAll();
}

void LockManager::ReleaseAll(uint64_t txn_id) {
  platform::Guard lock(mu_);
  if (options_.audit_strict_2pl) auditor_.OnReleaseAll(txn_id);
  ReleaseLocked(txn_id, /*read_locks_only=*/false);
}

void LockManager::ReleaseReadLocks(uint64_t txn_id) {
  platform::Guard lock(mu_);
  if (options_.audit_strict_2pl) auditor_.OnReleaseReadLocks(txn_id);
  ReleaseLocked(txn_id, /*read_locks_only=*/true);
}

bool LockManager::Holds(uint64_t txn_id, const std::string& resource,
                        LockMode mode) const {
  platform::Guard lock(mu_);
  auto lock_it = locks_.find(resource);
  if (lock_it == locks_.end()) return false;
  auto holder_it = lock_it->second.holders.find(txn_id);
  if (holder_it == lock_it->second.holders.end()) return false;
  return (holder_it->second & ModeBit(mode)) != 0;
}

size_t LockManager::ActiveLockCount() const {
  platform::Guard lock(mu_);
  return locks_.size();
}

}  // namespace mtdb
