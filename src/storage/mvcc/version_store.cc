#include "src/storage/mvcc/version_store.h"

#include <algorithm>

namespace mtdb::mvcc {

namespace {

// Newest version with commit_ts <= snapshot_ts. Chains are ascending and
// start with the ts-0 base, so a non-empty chain always has a match.
const RowVersion* VisibleIn(const std::vector<RowVersion>& chain,
                            uint64_t snapshot_ts) {
  const RowVersion* visible = nullptr;
  for (const RowVersion& version : chain) {
    if (version.commit_ts > snapshot_ts) break;
    visible = &version;
  }
  return visible;
}

}  // namespace

bool VersionStore::SeedBase(const std::string& db_name,
                            const std::string& table_name, const Value& pk,
                            std::optional<Row> values, uint64_t row_version) {
  platform::WriterGuard lock(latch_);
  Chain& chain = tables_[{db_name, table_name}][pk];
  if (!chain.empty()) return false;
  chain.push_back(RowVersion{0, row_version, std::move(values)});
  live_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

void VersionStore::Append(const std::string& db_name,
                          const std::string& table_name, const Value& pk,
                          uint64_t commit_ts, std::optional<Row> values,
                          uint64_t row_version) {
  platform::WriterGuard lock(latch_);
  Chain& chain = tables_[{db_name, table_name}][pk];
  chain.push_back(RowVersion{commit_ts, row_version, std::move(values)});
  live_.fetch_add(1, std::memory_order_relaxed);
}

std::optional<RowVersion> VersionStore::Get(const std::string& db_name,
                                            const std::string& table_name,
                                            const Value& pk,
                                            uint64_t snapshot_ts) const {
  platform::ReaderGuard lock(latch_);
  auto table_it = tables_.find({db_name, table_name});
  if (table_it == tables_.end()) return std::nullopt;
  auto chain_it = table_it->second.find(pk);
  if (chain_it == table_it->second.end()) return std::nullopt;
  const RowVersion* visible = VisibleIn(chain_it->second, snapshot_ts);
  if (visible == nullptr) return std::nullopt;
  return *visible;
}

std::map<Value, RowVersion> VersionStore::Overlay(
    const std::string& db_name, const std::string& table_name,
    const std::optional<Value>& lo, const std::optional<Value>& hi,
    uint64_t snapshot_ts) const {
  std::map<Value, RowVersion> overlay;
  platform::ReaderGuard lock(latch_);
  auto table_it = tables_.find({db_name, table_name});
  if (table_it == tables_.end()) return overlay;
  const auto& chains = table_it->second;
  auto it = lo ? chains.lower_bound(*lo) : chains.begin();
  auto end = hi ? chains.upper_bound(*hi) : chains.end();
  for (; it != end; ++it) {
    const RowVersion* visible = VisibleIn(it->second, snapshot_ts);
    if (visible != nullptr) overlay.emplace(it->first, *visible);
  }
  return overlay;
}

size_t VersionStore::PruneBelow(uint64_t watermark) {
  size_t pruned = 0;
  platform::WriterGuard lock(latch_);
  for (auto& [table_key, chains] : tables_) {
    for (auto& [pk, chain] : chains) {
      // Keep the newest version at or below the watermark (the floor every
      // surviving snapshot reads) and everything above it.
      size_t keep_from = 0;
      for (size_t i = 0; i < chain.size(); ++i) {
        if (chain[i].commit_ts <= watermark) keep_from = i;
      }
      if (keep_from > 0) {
        chain.erase(chain.begin(),
                    chain.begin() + static_cast<ptrdiff_t>(keep_from));
        pruned += keep_from;
      }
    }
  }
  if (pruned > 0) {
    live_.fetch_sub(static_cast<int64_t>(pruned), std::memory_order_relaxed);
  }
  return pruned;
}

}  // namespace mtdb::mvcc
