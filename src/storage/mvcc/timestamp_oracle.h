#ifndef MTDB_STORAGE_MVCC_TIMESTAMP_ORACLE_H_
#define MTDB_STORAGE_MVCC_TIMESTAMP_ORACLE_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>

#include "src/platform/mutex.h"

namespace mtdb::mvcc {

// Engine-wide commit-timestamp authority for the MVCC version store
// (DESIGN.md §13). Two jobs:
//
//  1. Mint strictly increasing commit timestamps for writers. A commit
//     *reserves* a timestamp, installs its versions, and then *publishes*
//     it; snapshot transactions only ever observe published timestamps, so
//     a reader can never see half of a commit (the engine serializes
//     reserve→install→publish under its commit mutex, which keeps the
//     publication order equal to the reservation order).
//
//  2. Track the set of active snapshots so the garbage collector knows the
//     watermark: no snapshot at or above the watermark can ever need a
//     version that was superseded at or before it.
class TimestampOracle {
 public:
  // Reserve the next commit timestamp (strictly increasing, starting at 1).
  // The timestamp is not visible to new snapshots until Publish(ts).
  uint64_t ReserveCommit() {
    return next_.fetch_add(1, std::memory_order_relaxed) + 1;
  }

  // Make `ts` (and, by the serialized-commit contract, everything below it)
  // visible to subsequent snapshots.
  void Publish(uint64_t ts) {
    last_published_.store(ts, std::memory_order_release);
  }

  // Newest timestamp whose versions are fully installed.
  uint64_t LastPublished() const {
    return last_published_.load(std::memory_order_acquire);
  }

  // Register a snapshot at the current published frontier and return its
  // timestamp. Must be paired with EndSnapshot(ts).
  uint64_t BeginSnapshot() {
    platform::Guard lock(mu_);
    uint64_t ts = LastPublished();
    ++active_[ts];
    return ts;
  }

  void EndSnapshot(uint64_t snapshot_ts) {
    platform::Guard lock(mu_);
    auto it = active_.find(snapshot_ts);
    if (it == active_.end()) return;  // double-end; tolerate
    if (--it->second == 0) active_.erase(it);
  }

  // GC watermark: the minimum active snapshot timestamp, or the published
  // frontier when no snapshot is active. Any version superseded at or below
  // the watermark is invisible to every present and future snapshot.
  uint64_t Watermark() const {
    platform::Guard lock(mu_);
    if (!active_.empty()) return active_.begin()->first;
    return LastPublished();
  }

  size_t ActiveSnapshots() const {
    platform::Guard lock(mu_);
    size_t n = 0;
    for (const auto& [ts, count] : active_) n += static_cast<size_t>(count);
    return n;
  }

 private:
  std::atomic<uint64_t> next_{0};
  std::atomic<uint64_t> last_published_{0};
  mutable platform::Mutex mu_{"storage/TimestampOracle::mu"};
  // snapshot ts -> number of active snapshot transactions pinned to it.
  std::map<uint64_t, int> active_ MTDB_GUARDED_BY(mu_);
};

}  // namespace mtdb::mvcc

#endif  // MTDB_STORAGE_MVCC_TIMESTAMP_ORACLE_H_
