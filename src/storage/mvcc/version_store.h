#ifndef MTDB_STORAGE_MVCC_VERSION_STORE_H_
#define MTDB_STORAGE_MVCC_VERSION_STORE_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "src/platform/mutex.h"
#include "src/storage/value.h"

namespace mtdb::mvcc {

// One entry in a row's version chain. `values == nullopt` is a tombstone:
// the row did not exist (or was deleted) as of `commit_ts`.
struct RowVersion {
  uint64_t commit_ts = 0;
  // The table's per-row version number for this image — the same number the
  // lock-manager path records into Transaction::reads/writes, so snapshot
  // reads produce DSG observations comparable with 2PL ones.
  uint64_t row_version = 0;
  std::optional<Row> values;
};

// Multi-version overlay of the live row store (DESIGN.md §13). Chains are
// append-only in commit-timestamp order and *authoritative*: once a key has
// a chain, snapshot readers never consult the live table for it (the live
// row may hold an uncommitted in-place image — writes are undo-based). The
// base version (commit_ts 0) is seeded by the first writer of a key
// *before* its in-place table mutation, while it holds the row X lock, so
// the committed pre-image is always reachable and there is no dirty window.
//
// Keys with no chain have never been written transactionally (bulk load
// only); their live value is committed by construction, and readers fall
// back to it.
class VersionStore {
 public:
  // Seed the chain base (pre-image, commit_ts 0) iff the key has no chain
  // yet. `values == nullopt` for a key that does not exist (insert path).
  // Returns true if this call created the chain.
  bool SeedBase(const std::string& db_name, const std::string& table_name,
                const Value& pk, std::optional<Row> values,
                uint64_t row_version);

  // Append a committed image. `commit_ts` must exceed every timestamp in
  // the chain (the engine serializes commits under its commit mutex).
  void Append(const std::string& db_name, const std::string& table_name,
              const Value& pk, uint64_t commit_ts, std::optional<Row> values,
              uint64_t row_version);

  // Visible version at `snapshot_ts` (newest commit_ts <= snapshot_ts), or
  // nullopt when the key has no chain — the caller falls back to the live
  // row. A present chain always yields a version: the base floor at ts 0 is
  // visible to every snapshot.
  std::optional<RowVersion> Get(const std::string& db_name,
                                const std::string& table_name, const Value& pk,
                                uint64_t snapshot_ts) const;

  // Visible version for every chained key of `db.table` with pk in
  // [lo, hi] (either bound optional). Scans merge this overlay with the
  // live rows: chained keys take the overlay image, unchained keys keep
  // their live value.
  std::map<Value, RowVersion> Overlay(const std::string& db_name,
                                      const std::string& table_name,
                                      const std::optional<Value>& lo,
                                      const std::optional<Value>& hi,
                                      uint64_t snapshot_ts) const;

  // Garbage collection: within every chain, drop versions strictly older
  // than the newest version at or below `watermark` (that one stays — it is
  // what snapshots at the watermark read). Chains are never dropped whole:
  // chain-presence is what shields readers from uncommitted live rows.
  // Returns the number of versions pruned.
  size_t PruneBelow(uint64_t watermark);

  // Total versions currently held across all chains.
  int64_t live_versions() const {
    return live_.load(std::memory_order_relaxed);
  }

 private:
  using Chain = std::vector<RowVersion>;  // ascending commit_ts
  using TableKey = std::pair<std::string, std::string>;

  mutable platform::SharedMutex latch_{"storage/VersionStore::latch"};
  std::map<TableKey, std::map<Value, Chain>> tables_ MTDB_GUARDED_BY(latch_);
  std::atomic<int64_t> live_{0};
};

}  // namespace mtdb::mvcc

#endif  // MTDB_STORAGE_MVCC_VERSION_STORE_H_
