#ifndef MTDB_SQL_QUERY_RESULT_H_
#define MTDB_SQL_QUERY_RESULT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/storage/value.h"

namespace mtdb::sql {

// Result of executing one statement: a relation for queries, an affected-row
// count for DML/DDL. Lives in its own header so layers that only ship results
// around (the wire codec, the engine's prepared-statement API) need not pull
// in the executor.
struct QueryResult {
  std::vector<std::string> columns;
  std::vector<Row> rows;
  int64_t affected_rows = 0;

  // Convenience accessors for single-valued results.
  bool empty() const { return rows.empty(); }
  const Value& at(size_t row, size_t col) const { return rows[row][col]; }
};

}  // namespace mtdb::sql

#endif  // MTDB_SQL_QUERY_RESULT_H_
