#ifndef MTDB_SQL_AST_H_
#define MTDB_SQL_AST_H_

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/storage/schema.h"
#include "src/storage/value.h"

namespace mtdb::sql {

// --- Expressions ---

enum class ExprKind {
  kLiteral,    // 42, 'abc', NULL
  kColumnRef,  // col or tbl.col
  kParam,      // ? (positional)
  kUnary,      // NOT e, -e
  kBinary,     // e op e  (comparisons, AND/OR, arithmetic, LIKE)
  kFunction,   // COUNT/SUM/AVG/MIN/MAX(expr) or COUNT(*)
  kInList,     // e IN (v1, v2, ...), possibly negated
  kIsNull,     // e IS [NOT] NULL
};

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

struct Expr {
  ExprKind kind;

  // kLiteral
  Value literal;
  // kColumnRef
  std::string table;   // optional qualifier
  std::string column;
  // kParam
  int param_index = -1;
  // kUnary / kBinary: operator text, normalized uppercase ("AND", "=", "+",
  // "LIKE", "NOT", "-").
  std::string op;
  // kFunction: uppercase name; star for COUNT(*).
  std::string function;
  bool star = false;
  // kInList / kIsNull
  bool negated = false;

  std::vector<ExprPtr> children;

  // True if this subtree contains an aggregate function call.
  bool ContainsAggregate() const;
  // Structural key used to match identical aggregate expressions between the
  // SELECT list and the computed group values.
  std::string Fingerprint() const;
};

ExprPtr MakeLiteral(Value v);
ExprPtr MakeColumnRef(std::string table, std::string column);
ExprPtr MakeParam(int index);
ExprPtr MakeUnary(std::string op, ExprPtr operand);
ExprPtr MakeBinary(std::string op, ExprPtr lhs, ExprPtr rhs);

// True for COUNT/SUM/AVG/MIN/MAX.
bool IsAggregateFunction(const std::string& upper_name);

// --- Statements ---

struct SelectItem {
  ExprPtr expr;          // null when star
  std::string alias;     // output column name (defaults derived)
  bool star = false;     // SELECT * or t.*
  std::string star_table;
};

struct TableRef {
  std::string table;
  std::string alias;  // defaults to table name

  const std::string& EffectiveName() const {
    return alias.empty() ? table : alias;
  }
};

struct JoinClause {
  TableRef table;
  ExprPtr on;
};

struct OrderByItem {
  ExprPtr expr;
  bool descending = false;
};

struct SelectStatement {
  std::vector<SelectItem> items;
  std::vector<TableRef> from;     // comma-separated FROM list (cross join)
  std::vector<JoinClause> joins;  // explicit [INNER] JOIN ... ON
  ExprPtr where;
  std::vector<ExprPtr> group_by;
  ExprPtr having;
  std::vector<OrderByItem> order_by;
  int64_t limit = -1;  // -1 = no limit
};

struct InsertStatement {
  std::string table;
  std::vector<std::string> columns;         // empty = all, in schema order
  std::vector<std::vector<ExprPtr>> rows;   // VALUES (...), (...)
};

struct UpdateStatement {
  std::string table;
  std::vector<std::pair<std::string, ExprPtr>> assignments;
  ExprPtr where;
};

struct DeleteStatement {
  std::string table;
  ExprPtr where;
};

struct CreateTableStatement {
  TableSchema schema;
};

struct CreateIndexStatement {
  std::string index_name;
  std::string table;
  std::string column;
};

struct DropTableStatement {
  std::string table;
};

enum class StatementKind {
  kSelect,
  kInsert,
  kUpdate,
  kDelete,
  kCreateTable,
  kCreateIndex,
  kDropTable,
};

struct Statement {
  StatementKind kind = StatementKind::kSelect;
  // EXPLAIN <stmt>: plan the statement and return the plan tree as text
  // instead of executing it.
  bool explain = false;
  SelectStatement select;
  InsertStatement insert;
  UpdateStatement update;
  DeleteStatement del;
  CreateTableStatement create_table;
  CreateIndexStatement create_index;
  DropTableStatement drop_table;
};

}  // namespace mtdb::sql

#endif  // MTDB_SQL_AST_H_
