#ifndef MTDB_SQL_EXPRESSION_H_
#define MTDB_SQL_EXPRESSION_H_

#include <map>
#include <string>
#include <vector>

#include "src/common/result.h"
#include "src/sql/ast.h"
#include "src/storage/schema.h"

namespace mtdb::sql {

// Describes the shape of the rows an expression evaluates against: the
// concatenated columns of all tables in scope, each tagged with its source
// qualifier (table alias). Built by the executor while planning.
class RowLayout {
 public:
  void Append(const std::string& qualifier, const TableSchema& schema);

  // Resolves `qualifier.name` (qualifier may be empty) to a slot index.
  // Errors on unknown or ambiguous columns.
  Result<int> Resolve(const std::string& qualifier,
                      const std::string& name) const;

  size_t size() const { return columns_.size(); }
  const std::string& name_at(size_t i) const { return names_[i]; }
  const std::string& qualifier_at(size_t i) const { return qualifiers_[i]; }

 private:
  std::vector<std::string> qualifiers_;
  std::vector<std::string> names_;
  std::vector<int> columns_;  // unused payload; kept parallel for clarity
};

// Evaluates expressions against a row of a given layout. NULL semantics: any
// comparison or arithmetic involving NULL yields NULL; WHERE treats NULL as
// false (IsTruthy).
//
// Aggregate function nodes are resolved through an optional fingerprint map
// computed by the executor's grouping phase; evaluating an aggregate without
// that map is an error.
class ExprEvaluator {
 public:
  ExprEvaluator(const RowLayout* layout, const std::vector<Value>* params)
      : layout_(layout), params_(params) {}

  Result<Value> Eval(const Expr& expr, const Row& row) const {
    return EvalInternal(expr, row, nullptr);
  }

  Result<Value> EvalWithAggregates(
      const Expr& expr, const Row& row,
      const std::map<std::string, Value>& aggregates) const {
    return EvalInternal(expr, row, &aggregates);
  }

  // SQL LIKE with % (any run) and _ (single char).
  static bool LikeMatch(const std::string& text, const std::string& pattern);

  // WHERE-clause truthiness: non-null and numerically non-zero.
  static bool IsTruthy(const Value& v);

 private:
  Result<Value> EvalInternal(
      const Expr& expr, const Row& row,
      const std::map<std::string, Value>* aggregates) const;
  Result<Value> EvalBinary(
      const Expr& expr, const Row& row,
      const std::map<std::string, Value>* aggregates) const;

  const RowLayout* layout_;
  const std::vector<Value>* params_;
};

}  // namespace mtdb::sql

#endif  // MTDB_SQL_EXPRESSION_H_
