#include "src/sql/ast.h"

namespace mtdb::sql {

bool IsAggregateFunction(const std::string& upper_name) {
  return upper_name == "COUNT" || upper_name == "SUM" || upper_name == "AVG" ||
         upper_name == "MIN" || upper_name == "MAX";
}

bool Expr::ContainsAggregate() const {
  if (kind == ExprKind::kFunction && IsAggregateFunction(function)) {
    return true;
  }
  for (const ExprPtr& child : children) {
    if (child && child->ContainsAggregate()) return true;
  }
  return false;
}

std::string Expr::Fingerprint() const {
  std::string out;
  switch (kind) {
    case ExprKind::kLiteral:
      out = "L:" + literal.ToString();
      break;
    case ExprKind::kColumnRef:
      out = "C:" + table + "." + column;
      break;
    case ExprKind::kParam:
      out = "P:" + std::to_string(param_index);
      break;
    case ExprKind::kUnary:
      out = "U:" + op;
      break;
    case ExprKind::kBinary:
      out = "B:" + op;
      break;
    case ExprKind::kFunction:
      out = "F:" + function + (star ? "*" : "");
      break;
    case ExprKind::kInList:
      out = negated ? "NIN" : "IN";
      break;
    case ExprKind::kIsNull:
      out = negated ? "NOTNULL" : "ISNULL";
      break;
  }
  out += "(";
  for (const ExprPtr& child : children) {
    out += child ? child->Fingerprint() : "<null>";
    out += ",";
  }
  out += ")";
  return out;
}

ExprPtr MakeLiteral(Value v) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kLiteral;
  e->literal = std::move(v);
  return e;
}

ExprPtr MakeColumnRef(std::string table, std::string column) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kColumnRef;
  e->table = std::move(table);
  e->column = std::move(column);
  return e;
}

ExprPtr MakeParam(int index) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kParam;
  e->param_index = index;
  return e;
}

ExprPtr MakeUnary(std::string op, ExprPtr operand) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kUnary;
  e->op = std::move(op);
  e->children.push_back(std::move(operand));
  return e;
}

ExprPtr MakeBinary(std::string op, ExprPtr lhs, ExprPtr rhs) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kBinary;
  e->op = std::move(op);
  e->children.push_back(std::move(lhs));
  e->children.push_back(std::move(rhs));
  return e;
}

}  // namespace mtdb::sql
