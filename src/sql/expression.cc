#include "src/sql/expression.h"

#include <cmath>

namespace mtdb::sql {

void RowLayout::Append(const std::string& qualifier,
                       const TableSchema& schema) {
  for (size_t i = 0; i < schema.columns().size(); ++i) {
    qualifiers_.push_back(qualifier);
    names_.push_back(schema.columns()[i].name);
    columns_.push_back(static_cast<int>(i));
  }
}

Result<int> RowLayout::Resolve(const std::string& qualifier,
                               const std::string& name) const {
  int found = -1;
  for (size_t i = 0; i < names_.size(); ++i) {
    if (names_[i] != name) continue;
    if (!qualifier.empty() && qualifiers_[i] != qualifier) continue;
    if (found >= 0) {
      return Status::InvalidArgument("ambiguous column reference " + name);
    }
    found = static_cast<int>(i);
  }
  if (found < 0) {
    return Status::InvalidArgument(
        "unknown column " + (qualifier.empty() ? name : qualifier + "." + name));
  }
  return found;
}

bool ExprEvaluator::IsTruthy(const Value& v) {
  if (v.is_null()) return false;
  if (v.is_numeric()) return v.AsDouble() != 0.0;
  return !v.AsString().empty();
}

bool ExprEvaluator::LikeMatch(const std::string& text,
                              const std::string& pattern) {
  // Iterative glob matching with backtracking on '%'.
  size_t t = 0, p = 0;
  size_t star_p = std::string::npos, star_t = 0;
  while (t < text.size()) {
    if (p < pattern.size() &&
        (pattern[p] == '_' || pattern[p] == text[t])) {
      ++t;
      ++p;
    } else if (p < pattern.size() && pattern[p] == '%') {
      star_p = p++;
      star_t = t;
    } else if (star_p != std::string::npos) {
      p = star_p + 1;
      t = ++star_t;
    } else {
      return false;
    }
  }
  while (p < pattern.size() && pattern[p] == '%') ++p;
  return p == pattern.size();
}

namespace {

Value CompareToValue(int cmp, const std::string& op) {
  bool result = false;
  if (op == "=") result = cmp == 0;
  else if (op == "<>") result = cmp != 0;
  else if (op == "<") result = cmp < 0;
  else if (op == "<=") result = cmp <= 0;
  else if (op == ">") result = cmp > 0;
  else if (op == ">=") result = cmp >= 0;
  return Value(int64_t{result ? 1 : 0});
}

Result<Value> Arithmetic(const std::string& op, const Value& a,
                         const Value& b) {
  if (a.is_null() || b.is_null()) return Value();
  if (!a.is_numeric() || !b.is_numeric()) {
    return Status::InvalidArgument("arithmetic on non-numeric value");
  }
  if (op == "/") {
    double denom = b.AsDouble();
    if (denom == 0.0) return Value();  // SQL: division by zero yields NULL
    return Value(a.AsDouble() / denom);
  }
  if (op == "%") {
    if (!a.is_int() || !b.is_int()) {
      return Status::InvalidArgument("modulo requires integers");
    }
    if (b.AsInt() == 0) return Value();
    return Value(a.AsInt() % b.AsInt());
  }
  if (a.is_int() && b.is_int()) {
    int64_t x = a.AsInt(), y = b.AsInt();
    if (op == "+") return Value(x + y);
    if (op == "-") return Value(x - y);
    if (op == "*") return Value(x * y);
  } else {
    double x = a.AsDouble(), y = b.AsDouble();
    if (op == "+") return Value(x + y);
    if (op == "-") return Value(x - y);
    if (op == "*") return Value(x * y);
  }
  return Status::Internal("unknown arithmetic operator " + op);
}

}  // namespace

Result<Value> ExprEvaluator::EvalBinary(
    const Expr& expr, const Row& row,
    const std::map<std::string, Value>* aggregates) const {
  const std::string& op = expr.op;
  // Short-circuit logical operators with three-valued NULL handling.
  if (op == "AND" || op == "OR") {
    MTDB_ASSIGN_OR_RETURN(Value lhs,
                          EvalInternal(*expr.children[0], row, aggregates));
    bool lhs_null = lhs.is_null();
    bool lhs_true = IsTruthy(lhs);
    if (op == "AND" && !lhs_null && !lhs_true) return Value(int64_t{0});
    if (op == "OR" && !lhs_null && lhs_true) return Value(int64_t{1});
    MTDB_ASSIGN_OR_RETURN(Value rhs,
                          EvalInternal(*expr.children[1], row, aggregates));
    bool rhs_null = rhs.is_null();
    bool rhs_true = IsTruthy(rhs);
    if (op == "AND") {
      if (!rhs_null && !rhs_true) return Value(int64_t{0});
      if (lhs_null || rhs_null) return Value();
      return Value(int64_t{1});
    }
    if (!rhs_null && rhs_true) return Value(int64_t{1});
    if (lhs_null || rhs_null) return Value();
    return Value(int64_t{0});
  }

  MTDB_ASSIGN_OR_RETURN(Value lhs,
                        EvalInternal(*expr.children[0], row, aggregates));
  MTDB_ASSIGN_OR_RETURN(Value rhs,
                        EvalInternal(*expr.children[1], row, aggregates));

  if (op == "LIKE") {
    if (lhs.is_null() || rhs.is_null()) return Value();
    if (!lhs.is_string() || !rhs.is_string()) {
      return Status::InvalidArgument("LIKE requires string operands");
    }
    return Value(int64_t{LikeMatch(lhs.AsString(), rhs.AsString()) ? 1 : 0});
  }
  if (op == "=" || op == "<>" || op == "<" || op == "<=" || op == ">" ||
      op == ">=") {
    if (lhs.is_null() || rhs.is_null()) return Value();
    return CompareToValue(lhs.Compare(rhs), op);
  }
  return Arithmetic(op, lhs, rhs);
}

Result<Value> ExprEvaluator::EvalInternal(
    const Expr& expr, const Row& row,
    const std::map<std::string, Value>* aggregates) const {
  switch (expr.kind) {
    case ExprKind::kLiteral:
      return expr.literal;
    case ExprKind::kColumnRef: {
      MTDB_ASSIGN_OR_RETURN(int slot,
                            layout_->Resolve(expr.table, expr.column));
      if (static_cast<size_t>(slot) >= row.size()) {
        return Status::Internal("row narrower than layout");
      }
      return row[slot];
    }
    case ExprKind::kParam: {
      if (params_ == nullptr ||
          expr.param_index >= static_cast<int>(params_->size())) {
        return Status::InvalidArgument(
            "missing bind parameter " + std::to_string(expr.param_index));
      }
      return (*params_)[expr.param_index];
    }
    case ExprKind::kUnary: {
      MTDB_ASSIGN_OR_RETURN(Value operand,
                            EvalInternal(*expr.children[0], row, aggregates));
      if (expr.op == "NOT") {
        if (operand.is_null()) return Value();
        return Value(int64_t{IsTruthy(operand) ? 0 : 1});
      }
      if (expr.op == "-") {
        if (operand.is_null()) return Value();
        if (operand.is_int()) return Value(-operand.AsInt());
        if (operand.is_double()) return Value(-operand.AsDouble());
        return Status::InvalidArgument("unary minus on non-numeric value");
      }
      return Status::Internal("unknown unary operator " + expr.op);
    }
    case ExprKind::kBinary:
      return EvalBinary(expr, row, aggregates);
    case ExprKind::kFunction: {
      if (IsAggregateFunction(expr.function)) {
        if (aggregates == nullptr) {
          return Status::InvalidArgument(
              "aggregate " + expr.function +
              " used outside an aggregating query context");
        }
        auto it = aggregates->find(expr.Fingerprint());
        if (it == aggregates->end()) {
          return Status::Internal("aggregate value not computed: " +
                                  expr.function);
        }
        return it->second;
      }
      return Status::InvalidArgument("unknown function " + expr.function);
    }
    case ExprKind::kInList: {
      MTDB_ASSIGN_OR_RETURN(Value needle,
                            EvalInternal(*expr.children[0], row, aggregates));
      if (needle.is_null()) return Value();
      bool found = false;
      for (size_t i = 1; i < expr.children.size(); ++i) {
        MTDB_ASSIGN_OR_RETURN(
            Value candidate, EvalInternal(*expr.children[i], row, aggregates));
        if (!candidate.is_null() && needle.Compare(candidate) == 0) {
          found = true;
          break;
        }
      }
      bool result = expr.negated ? !found : found;
      return Value(int64_t{result ? 1 : 0});
    }
    case ExprKind::kIsNull: {
      MTDB_ASSIGN_OR_RETURN(Value operand,
                            EvalInternal(*expr.children[0], row, aggregates));
      bool is_null = operand.is_null();
      bool result = expr.negated ? !is_null : is_null;
      return Value(int64_t{result ? 1 : 0});
    }
  }
  return Status::Internal("unhandled expression kind");
}

}  // namespace mtdb::sql
