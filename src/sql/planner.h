#ifndef MTDB_SQL_PLANNER_H_
#define MTDB_SQL_PLANNER_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/common/result.h"
#include "src/sql/ast.h"
#include "src/sql/expression.h"

namespace mtdb {
class Engine;
}  // namespace mtdb

namespace mtdb::sql {

// ---- Physical plan nodes ----
//
// A plan is derived once from an AST plus a schema snapshot and can then be
// executed many times with different `?` parameters. Plans hold raw `const
// Expr*` pointers into the statement AST (owned by or outliving the
// PlannedStatement) and *copies* of everything schema-derived — names,
// column indexes, row layouts — so a cached plan never dangles after DDL;
// staleness is handled by the engine's schema-version check, and a dropped
// table surfaces as kNotFound from the row operations at execution time.

// How one table's rows are fetched.
enum class AccessPathKind {
  kPkPoint,     // PK = const: single Read
  kIndexProbe,  // indexed col = const: IndexLookup + Read per pk
  kPkRange,     // PK range: ScanRange with inclusive bounds
  kFullScan,    // ScanTable
};

struct ScanNode {
  std::string alias;
  std::string table;
  AccessPathKind path = AccessPathKind::kFullScan;
  const Expr* key = nullptr;      // kPkPoint / kIndexProbe: constant-side expr
  std::string index_column;       // kIndexProbe: indexed column name
  // kPkRange: all usable bound expressions; the executor evaluates each and
  // keeps the tightest (inclusive — strict comparisons are re-applied by the
  // residual WHERE filter).
  std::vector<const Expr*> lo;
  std::vector<const Expr*> hi;
};

// How the inner side of one nested-loop join is matched per outer row.
enum class JoinStrategy {
  kPkProbe,     // inner.pk = f(outer): Read per outer row
  kIndexProbe,  // inner.indexed = f(outer): IndexLookup per outer row
  kScan,        // no usable equi-condition: scan inner once, cross product
};

struct JoinNode {
  std::string alias;
  std::string table;
  JoinStrategy strategy = JoinStrategy::kScan;
  const Expr* probe_key = nullptr;  // evaluated against the outer row
  std::string probe_column;         // kIndexProbe: indexed column name
  const Expr* residual = nullptr;   // full ON clause, re-checked after joining
  RowLayout outer_layout;           // layout before this join (probe scope)
  RowLayout post_layout;            // layout after appending the inner table
};

struct OutputColumn {
  const Expr* expr = nullptr;  // null => direct slot copy (star expansion)
  int slot = -1;
  std::string name;
};

struct OrderKey {
  const Expr* expr = nullptr;
  bool descending = false;
  int alias_slot = -1;  // >= 0: sort on this projected output column
};

struct SelectPlan {
  ScanNode driver;              // first FROM entry, access path from WHERE
  std::vector<JoinNode> joins;  // remaining sources, left-deep
  RowLayout layout;             // final joined layout
  const Expr* where = nullptr;  // residual filter over the full layout
  std::vector<OutputColumn> outputs;
  bool aggregating = false;
  std::vector<const Expr*> agg_nodes;  // every aggregate call in the stmt
  std::vector<const Expr*> group_by;
  const Expr* having = nullptr;
  std::vector<OrderKey> order_by;
  int64_t limit = -1;
};

struct InsertPlan {
  std::string table;
  std::vector<int> column_map;  // value position -> schema column index
  size_t row_width = 0;         // schema.num_columns()
};

// UPDATE / DELETE share a shape: pick rows, filter, mutate by PK.
struct MutatePlan {
  std::string table;
  ScanNode scan;
  // False => the statement cannot be proven to touch a single PK point, so
  // the executor escalates to a table X lock before fetching.
  bool pk_point = false;
  int pk = -1;
  const Expr* where = nullptr;
  RowLayout layout;
  // Resolved SET targets (UPDATE only): schema column index + value expr.
  std::vector<std::pair<int, const Expr*>> assignments;
};

// A planned statement: the physical plan plus the AST it points into. When
// produced by Planner::Plan the AST is owned (`owned_stmt`); when produced by
// PlanBorrowed it borrows the caller's AST, which must outlive execution.
// Immutable after planning — safe to execute from many threads at once via
// shared_ptr<const PlannedStatement> (the engine plan cache does exactly
// that).
struct PlannedStatement {
  Statement owned_stmt;
  const Statement* stmt = nullptr;  // always valid; == &owned_stmt when owned

  StatementKind kind = StatementKind::kSelect;
  bool explain = false;
  SelectPlan select;
  InsertPlan insert;
  MutatePlan update;
  MutatePlan del;

  // One line per operator, two-space indented under the statement head; the
  // text EXPLAIN returns.
  std::string Explain() const;
};

// Turns an AST plus the engine's current catalog into a physical plan.
// Resolution errors (unknown database/table/column, missing FROM) surface
// here with the same status codes and messages the monolithic executor used
// to produce at execution time.
class Planner {
 public:
  explicit Planner(Engine* engine) : engine_(engine) {}

  // Takes ownership of the AST; the result is self-contained and cacheable.
  Result<std::shared_ptr<const PlannedStatement>> Plan(
      const std::string& db_name, Statement stmt);

  // Borrows the caller's AST (which must outlive the returned plan) — the
  // one-shot path used when a statement is executed directly from an AST.
  Result<std::unique_ptr<const PlannedStatement>> PlanBorrowed(
      const std::string& db_name, const Statement& stmt);

 private:
  Status PlanInto(const std::string& db_name, const Statement& stmt,
                  PlannedStatement* plan);

  Engine* engine_;
};

// Debug rendering of an expression tree (used by EXPLAIN).
std::string ExprToString(const Expr& expr);

}  // namespace mtdb::sql

#endif  // MTDB_SQL_PLANNER_H_
