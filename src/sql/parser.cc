#include "src/sql/parser.h"

#include <cctype>

#include "src/obs/metrics.h"
#include "src/sql/lexer.h"

namespace mtdb::sql {

namespace {

std::string ToUpper(const std::string& text) {
  std::string out = text;
  for (char& c : out) c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  return out;
}

// Recursive-descent parser over the token stream.
class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<Statement> ParseStatement() {
    Statement stmt;
    if (Accept("EXPLAIN")) stmt.explain = true;
    if (Accept("SELECT")) {
      stmt.kind = StatementKind::kSelect;
      MTDB_RETURN_IF_ERROR(ParseSelect(&stmt.select));
    } else if (Accept("INSERT")) {
      stmt.kind = StatementKind::kInsert;
      MTDB_RETURN_IF_ERROR(ParseInsert(&stmt.insert));
    } else if (Accept("UPDATE")) {
      stmt.kind = StatementKind::kUpdate;
      MTDB_RETURN_IF_ERROR(ParseUpdate(&stmt.update));
    } else if (Accept("DELETE")) {
      stmt.kind = StatementKind::kDelete;
      MTDB_RETURN_IF_ERROR(ParseDelete(&stmt.del));
    } else if (Accept("CREATE")) {
      if (Accept("TABLE")) {
        stmt.kind = StatementKind::kCreateTable;
        MTDB_RETURN_IF_ERROR(ParseCreateTable(&stmt.create_table));
      } else if (Accept("INDEX")) {
        stmt.kind = StatementKind::kCreateIndex;
        MTDB_RETURN_IF_ERROR(ParseCreateIndex(&stmt.create_index));
      } else {
        return Error("expected TABLE or INDEX after CREATE");
      }
    } else if (Accept("DROP")) {
      MTDB_RETURN_IF_ERROR(Expect("TABLE"));
      stmt.kind = StatementKind::kDropTable;
      MTDB_ASSIGN_OR_RETURN(stmt.drop_table.table, Identifier());
    } else {
      return Error("expected a SQL statement");
    }
    Accept(";");
    if (Current().type != TokenType::kEnd) {
      return Error("unexpected trailing tokens");
    }
    return stmt;
  }

 private:
  const Token& Current() const { return tokens_[pos_]; }
  const Token& Peek(size_t ahead = 1) const {
    size_t i = pos_ + ahead;
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }
  void Advance() {
    if (pos_ + 1 < tokens_.size()) ++pos_;
  }

  bool Accept(std::string_view keyword) {
    if (Current().Is(keyword)) {
      Advance();
      return true;
    }
    return false;
  }

  Status Expect(std::string_view keyword) {
    if (!Accept(keyword)) {
      return Error(std::string("expected '") + std::string(keyword) + "'");
    }
    return Status::OK();
  }

  Status Error(const std::string& message) const {
    return Status::ParseError(message + " near offset " +
                              std::to_string(Current().position) +
                              (Current().text.empty()
                                   ? ""
                                   : " ('" + Current().text + "')"));
  }

  Result<std::string> Identifier() {
    if (Current().type != TokenType::kIdentifier) {
      return Error("expected identifier");
    }
    std::string name = Current().text;
    Advance();
    return name;
  }

  // --- SELECT ---

  Status ParseSelect(SelectStatement* select) {
    // Select list.
    do {
      SelectItem item;
      if (Current().Is("*")) {
        Advance();
        item.star = true;
      } else if (Current().type == TokenType::kIdentifier &&
                 Peek().Is(".") && Peek(2).Is("*")) {
        item.star = true;
        item.star_table = Current().text;
        Advance();
        Advance();
        Advance();
      } else {
        MTDB_ASSIGN_OR_RETURN(item.expr, ParseExpr());
        if (Accept("AS")) {
          MTDB_ASSIGN_OR_RETURN(item.alias, Identifier());
        } else if (Current().type == TokenType::kIdentifier &&
                   !IsClauseKeyword(Current())) {
          item.alias = Current().text;
          Advance();
        }
      }
      select->items.push_back(std::move(item));
    } while (Accept(","));

    MTDB_RETURN_IF_ERROR(Expect("FROM"));
    do {
      MTDB_ASSIGN_OR_RETURN(TableRef ref, ParseTableRef());
      select->from.push_back(std::move(ref));
    } while (Accept(","));

    while (Current().Is("JOIN") || Current().Is("INNER")) {
      Accept("INNER");
      MTDB_RETURN_IF_ERROR(Expect("JOIN"));
      JoinClause join;
      MTDB_ASSIGN_OR_RETURN(join.table, ParseTableRef());
      MTDB_RETURN_IF_ERROR(Expect("ON"));
      MTDB_ASSIGN_OR_RETURN(join.on, ParseExpr());
      select->joins.push_back(std::move(join));
    }

    if (Accept("WHERE")) {
      MTDB_ASSIGN_OR_RETURN(select->where, ParseExpr());
    }
    if (Accept("GROUP")) {
      MTDB_RETURN_IF_ERROR(Expect("BY"));
      do {
        MTDB_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
        select->group_by.push_back(std::move(e));
      } while (Accept(","));
    }
    if (Accept("HAVING")) {
      MTDB_ASSIGN_OR_RETURN(select->having, ParseExpr());
    }
    if (Accept("ORDER")) {
      MTDB_RETURN_IF_ERROR(Expect("BY"));
      do {
        OrderByItem item;
        MTDB_ASSIGN_OR_RETURN(item.expr, ParseExpr());
        if (Accept("DESC")) {
          item.descending = true;
        } else {
          Accept("ASC");
        }
        select->order_by.push_back(std::move(item));
      } while (Accept(","));
    }
    if (Accept("LIMIT")) {
      if (Current().type != TokenType::kIntLiteral) {
        return Error("expected integer after LIMIT");
      }
      select->limit = Current().int_value;
      Advance();
    }
    return Status::OK();
  }

  static bool IsClauseKeyword(const Token& token) {
    static constexpr std::string_view kKeywords[] = {
        "FROM",  "WHERE", "GROUP", "HAVING", "ORDER", "LIMIT",
        "JOIN",  "INNER", "ON",    "AS",     "ASC",   "DESC",
        "SET",   "VALUES", "AND",  "OR",     "NOT"};
    for (std::string_view kw : kKeywords) {
      if (token.Is(kw)) return true;
    }
    return false;
  }

  Result<TableRef> ParseTableRef() {
    TableRef ref;
    MTDB_ASSIGN_OR_RETURN(ref.table, Identifier());
    if (Accept("AS")) {
      MTDB_ASSIGN_OR_RETURN(ref.alias, Identifier());
    } else if (Current().type == TokenType::kIdentifier &&
               !IsClauseKeyword(Current())) {
      ref.alias = Current().text;
      Advance();
    }
    return ref;
  }

  // --- INSERT / UPDATE / DELETE ---

  Status ParseInsert(InsertStatement* insert) {
    MTDB_RETURN_IF_ERROR(Expect("INTO"));
    MTDB_ASSIGN_OR_RETURN(insert->table, Identifier());
    if (Accept("(")) {
      do {
        MTDB_ASSIGN_OR_RETURN(std::string col, Identifier());
        insert->columns.push_back(std::move(col));
      } while (Accept(","));
      MTDB_RETURN_IF_ERROR(Expect(")"));
    }
    MTDB_RETURN_IF_ERROR(Expect("VALUES"));
    do {
      MTDB_RETURN_IF_ERROR(Expect("("));
      std::vector<ExprPtr> row;
      do {
        MTDB_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
        row.push_back(std::move(e));
      } while (Accept(","));
      MTDB_RETURN_IF_ERROR(Expect(")"));
      insert->rows.push_back(std::move(row));
    } while (Accept(","));
    return Status::OK();
  }

  Status ParseUpdate(UpdateStatement* update) {
    MTDB_ASSIGN_OR_RETURN(update->table, Identifier());
    MTDB_RETURN_IF_ERROR(Expect("SET"));
    do {
      MTDB_ASSIGN_OR_RETURN(std::string col, Identifier());
      MTDB_RETURN_IF_ERROR(Expect("="));
      MTDB_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
      update->assignments.emplace_back(std::move(col), std::move(e));
    } while (Accept(","));
    if (Accept("WHERE")) {
      MTDB_ASSIGN_OR_RETURN(update->where, ParseExpr());
    }
    return Status::OK();
  }

  Status ParseDelete(DeleteStatement* del) {
    MTDB_RETURN_IF_ERROR(Expect("FROM"));
    MTDB_ASSIGN_OR_RETURN(del->table, Identifier());
    if (Accept("WHERE")) {
      MTDB_ASSIGN_OR_RETURN(del->where, ParseExpr());
    }
    return Status::OK();
  }

  // --- DDL ---

  Result<ColumnType> ParseColumnType() {
    MTDB_ASSIGN_OR_RETURN(std::string name, Identifier());
    std::string upper = ToUpper(name);
    // Optional (n) or (p, s) size suffix, ignored.
    if (Accept("(")) {
      while (!Current().Is(")") && Current().type != TokenType::kEnd) Advance();
      MTDB_RETURN_IF_ERROR(Expect(")"));
    }
    if (upper == "INT" || upper == "INTEGER" || upper == "BIGINT" ||
        upper == "SMALLINT") {
      return ColumnType::kInt64;
    }
    if (upper == "DOUBLE" || upper == "FLOAT" || upper == "REAL" ||
        upper == "DECIMAL" || upper == "NUMERIC") {
      return ColumnType::kDouble;
    }
    if (upper == "VARCHAR" || upper == "CHAR" || upper == "TEXT" ||
        upper == "DATE" || upper == "DATETIME" || upper == "TIMESTAMP") {
      return ColumnType::kString;
    }
    return Error("unknown column type " + name);
  }

  Status ParseCreateTable(CreateTableStatement* create) {
    MTDB_ASSIGN_OR_RETURN(std::string table_name, Identifier());
    MTDB_RETURN_IF_ERROR(Expect("("));
    std::vector<Column> columns;
    int pk_index = -1;
    do {
      if (Current().Is("PRIMARY")) {
        Advance();
        MTDB_RETURN_IF_ERROR(Expect("KEY"));
        MTDB_RETURN_IF_ERROR(Expect("("));
        MTDB_ASSIGN_OR_RETURN(std::string pk_col, Identifier());
        MTDB_RETURN_IF_ERROR(Expect(")"));
        for (size_t i = 0; i < columns.size(); ++i) {
          if (columns[i].name == pk_col) pk_index = static_cast<int>(i);
        }
        if (pk_index < 0) return Error("PRIMARY KEY names unknown column");
        continue;
      }
      Column col;
      MTDB_ASSIGN_OR_RETURN(col.name, Identifier());
      MTDB_ASSIGN_OR_RETURN(col.type, ParseColumnType());
      while (true) {
        if (Accept("PRIMARY")) {
          MTDB_RETURN_IF_ERROR(Expect("KEY"));
          pk_index = static_cast<int>(columns.size());
        } else if (Accept("NOT")) {
          MTDB_RETURN_IF_ERROR(Expect("NULL"));
          col.not_null = true;
        } else {
          break;
        }
      }
      columns.push_back(std::move(col));
    } while (Accept(","));
    MTDB_RETURN_IF_ERROR(Expect(")"));
    if (pk_index < 0) return Error("table must declare a PRIMARY KEY");
    create->schema = TableSchema(table_name, std::move(columns), pk_index);
    return Status::OK();
  }

  Status ParseCreateIndex(CreateIndexStatement* create) {
    MTDB_ASSIGN_OR_RETURN(create->index_name, Identifier());
    MTDB_RETURN_IF_ERROR(Expect("ON"));
    MTDB_ASSIGN_OR_RETURN(create->table, Identifier());
    MTDB_RETURN_IF_ERROR(Expect("("));
    MTDB_ASSIGN_OR_RETURN(create->column, Identifier());
    MTDB_RETURN_IF_ERROR(Expect(")"));
    return Status::OK();
  }

  // --- Expressions (precedence climbing) ---

  Result<ExprPtr> ParseExpr() { return ParseOr(); }

  Result<ExprPtr> ParseOr() {
    MTDB_ASSIGN_OR_RETURN(ExprPtr lhs, ParseAnd());
    while (Accept("OR")) {
      MTDB_ASSIGN_OR_RETURN(ExprPtr rhs, ParseAnd());
      lhs = MakeBinary("OR", std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<ExprPtr> ParseAnd() {
    MTDB_ASSIGN_OR_RETURN(ExprPtr lhs, ParseNot());
    while (Accept("AND")) {
      MTDB_ASSIGN_OR_RETURN(ExprPtr rhs, ParseNot());
      lhs = MakeBinary("AND", std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<ExprPtr> ParseNot() {
    if (Accept("NOT")) {
      MTDB_ASSIGN_OR_RETURN(ExprPtr operand, ParseNot());
      return MakeUnary("NOT", std::move(operand));
    }
    return ParseComparison();
  }

  Result<ExprPtr> ParseComparison() {
    MTDB_ASSIGN_OR_RETURN(ExprPtr lhs, ParseAdditive());
    // IS [NOT] NULL
    if (Accept("IS")) {
      bool negated = Accept("NOT");
      MTDB_RETURN_IF_ERROR(Expect("NULL"));
      auto e = std::make_unique<Expr>();
      e->kind = ExprKind::kIsNull;
      e->negated = negated;
      e->children.push_back(std::move(lhs));
      return ExprPtr(std::move(e));
    }
    // [NOT] IN (list) / [NOT] LIKE / [NOT] BETWEEN
    bool negated = false;
    if (Current().Is("NOT") &&
        (Peek().Is("IN") || Peek().Is("LIKE") || Peek().Is("BETWEEN"))) {
      Advance();
      negated = true;
    }
    if (Accept("IN")) {
      MTDB_RETURN_IF_ERROR(Expect("("));
      auto e = std::make_unique<Expr>();
      e->kind = ExprKind::kInList;
      e->negated = negated;
      e->children.push_back(std::move(lhs));
      do {
        MTDB_ASSIGN_OR_RETURN(ExprPtr item, ParseExpr());
        e->children.push_back(std::move(item));
      } while (Accept(","));
      MTDB_RETURN_IF_ERROR(Expect(")"));
      return ExprPtr(std::move(e));
    }
    if (Accept("LIKE")) {
      MTDB_ASSIGN_OR_RETURN(ExprPtr rhs, ParseAdditive());
      ExprPtr like = MakeBinary("LIKE", std::move(lhs), std::move(rhs));
      if (negated) like = MakeUnary("NOT", std::move(like));
      return like;
    }
    if (Accept("BETWEEN")) {
      MTDB_ASSIGN_OR_RETURN(ExprPtr lo, ParseAdditive());
      MTDB_RETURN_IF_ERROR(Expect("AND"));
      MTDB_ASSIGN_OR_RETURN(ExprPtr hi, ParseAdditive());
      // Desugar: lhs >= lo AND lhs <= hi. The lhs subtree is duplicated via
      // re-parse-free deep copy.
      ExprPtr lhs_copy = CloneExpr(*lhs);
      ExprPtr range =
          MakeBinary("AND", MakeBinary(">=", std::move(lhs), std::move(lo)),
                     MakeBinary("<=", std::move(lhs_copy), std::move(hi)));
      if (negated) range = MakeUnary("NOT", std::move(range));
      return range;
    }
    static constexpr std::string_view kComparisons[] = {"=",  "<>", "<=",
                                                        ">=", "<",  ">"};
    for (std::string_view op : kComparisons) {
      if (Current().type == TokenType::kSymbol && Current().Is(op)) {
        Advance();
        MTDB_ASSIGN_OR_RETURN(ExprPtr rhs, ParseAdditive());
        return MakeBinary(std::string(op), std::move(lhs), std::move(rhs));
      }
    }
    return lhs;
  }

  Result<ExprPtr> ParseAdditive() {
    MTDB_ASSIGN_OR_RETURN(ExprPtr lhs, ParseMultiplicative());
    while (Current().type == TokenType::kSymbol &&
           (Current().Is("+") || Current().Is("-"))) {
      std::string op = Current().text;
      Advance();
      MTDB_ASSIGN_OR_RETURN(ExprPtr rhs, ParseMultiplicative());
      lhs = MakeBinary(op, std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<ExprPtr> ParseMultiplicative() {
    MTDB_ASSIGN_OR_RETURN(ExprPtr lhs, ParseUnaryExpr());
    while (Current().type == TokenType::kSymbol &&
           (Current().Is("*") || Current().Is("/") || Current().Is("%"))) {
      std::string op = Current().text;
      Advance();
      MTDB_ASSIGN_OR_RETURN(ExprPtr rhs, ParseUnaryExpr());
      lhs = MakeBinary(op, std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<ExprPtr> ParseUnaryExpr() {
    if (Current().type == TokenType::kSymbol && Current().Is("-")) {
      Advance();
      MTDB_ASSIGN_OR_RETURN(ExprPtr operand, ParseUnaryExpr());
      return MakeUnary("-", std::move(operand));
    }
    return ParsePrimary();
  }

  Result<ExprPtr> ParsePrimary() {
    const Token& token = Current();
    switch (token.type) {
      case TokenType::kIntLiteral: {
        int64_t v = token.int_value;
        Advance();
        return MakeLiteral(Value(v));
      }
      case TokenType::kDoubleLiteral: {
        double v = token.double_value;
        Advance();
        return MakeLiteral(Value(v));
      }
      case TokenType::kStringLiteral: {
        std::string v = token.text;
        Advance();
        return MakeLiteral(Value(std::move(v)));
      }
      case TokenType::kSymbol:
        if (token.Is("?")) {
          Advance();
          return MakeParam(next_param_++);
        }
        if (token.Is("(")) {
          Advance();
          MTDB_ASSIGN_OR_RETURN(ExprPtr inner, ParseExpr());
          MTDB_RETURN_IF_ERROR(Expect(")"));
          return inner;
        }
        return Error("unexpected symbol in expression");
      case TokenType::kIdentifier: {
        if (token.Is("NULL")) {
          Advance();
          return MakeLiteral(Value());
        }
        std::string name = token.text;
        // Function call?
        if (Peek().Is("(")) {
          std::string upper = ToUpper(name);
          Advance();  // name
          Advance();  // (
          auto e = std::make_unique<Expr>();
          e->kind = ExprKind::kFunction;
          e->function = upper;
          if (Current().Is("*")) {
            e->star = true;
            Advance();
          } else if (!Current().Is(")")) {
            do {
              MTDB_ASSIGN_OR_RETURN(ExprPtr arg, ParseExpr());
              e->children.push_back(std::move(arg));
            } while (Accept(","));
          }
          MTDB_RETURN_IF_ERROR(Expect(")"));
          return ExprPtr(std::move(e));
        }
        Advance();
        // Qualified column?
        if (Current().Is(".") && Peek().type == TokenType::kIdentifier) {
          Advance();
          std::string column = Current().text;
          Advance();
          return MakeColumnRef(name, column);
        }
        return MakeColumnRef("", name);
      }
      case TokenType::kEnd:
        return Error("unexpected end of input in expression");
    }
    return Error("unexpected token in expression");
  }

  static ExprPtr CloneExpr(const Expr& e) {
    auto copy = std::make_unique<Expr>();
    copy->kind = e.kind;
    copy->literal = e.literal;
    copy->table = e.table;
    copy->column = e.column;
    copy->param_index = e.param_index;
    copy->op = e.op;
    copy->function = e.function;
    copy->star = e.star;
    copy->negated = e.negated;
    for (const ExprPtr& child : e.children) {
      copy->children.push_back(child ? CloneExpr(*child) : nullptr);
    }
    return copy;
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
  int next_param_ = 0;
};

}  // namespace

Result<Statement> Parse(const std::string& sql) {
  static obs::Counter* parse_total =
      obs::MetricsRegistry::Global().GetCounter("mtdb_sql_parse_total", {});
  obs::Increment(parse_total);
  MTDB_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(sql));
  Parser parser(std::move(tokens));
  return parser.ParseStatement();
}

}  // namespace mtdb::sql
