#ifndef MTDB_SQL_EXECUTOR_H_
#define MTDB_SQL_EXECUTOR_H_

#include <string>
#include <vector>

#include "src/common/result.h"
#include "src/sql/ast.h"
#include "src/sql/expression.h"
#include "src/sql/planner.h"
#include "src/sql/query_result.h"
#include "src/storage/engine.h"

namespace mtdb::sql {

// Executes physical plans against an Engine within a caller-managed
// transaction. Planning lives in Planner (src/sql/planner.h); this class
// only walks plan trees:
//  * ScanNode access paths: PK point lookup, PK range scan, secondary
//    index lookup, full scan;
//  * left-deep nested-loop joins, probing the inner side by PK or
//    secondary index when the plan says so;
//  * grouping/aggregation, HAVING, ORDER BY, LIMIT.
//
// Locking is delegated to the engine: point reads take row S locks, scans
// take table S locks, point writes take row X locks, and non-PK-predicate
// UPDATE/DELETE escalate to a table X lock.
class SqlExecutor {
 public:
  explicit SqlExecutor(Engine* engine) : engine_(engine) {}

  // Plans (borrowing `stmt`) and executes in one step.
  Result<QueryResult> Execute(uint64_t txn_id, const std::string& db_name,
                              const Statement& stmt,
                              const std::vector<Value>& params = {});

  // Parses, plans (through the engine's plan cache) and executes in one
  // step.
  Result<QueryResult> ExecuteSql(uint64_t txn_id, const std::string& db_name,
                                 const std::string& sql,
                                 const std::vector<Value>& params = {});

  // Walks an already-planned statement. EXPLAIN plans return their operator
  // tree as a one-column relation instead of executing.
  Result<QueryResult> ExecutePlan(uint64_t txn_id, const std::string& db_name,
                                  const PlannedStatement& plan,
                                  const std::vector<Value>& params = {});

 private:
  Result<QueryResult> ExecSelect(uint64_t txn_id, const std::string& db_name,
                                 const SelectPlan& plan,
                                 const std::vector<Value>& params);
  Result<QueryResult> ExecInsert(uint64_t txn_id, const std::string& db_name,
                                 const PlannedStatement& plan,
                                 const std::vector<Value>& params);
  Result<QueryResult> ExecMutate(uint64_t txn_id, const std::string& db_name,
                                 const MutatePlan& plan, bool is_update,
                                 const std::vector<Value>& params);
  Result<QueryResult> ExecDdl(const std::string& db_name,
                              const Statement& stmt);

  // Fetches the rows of one table along the plan's access path. Rows come
  // back as full table rows.
  Result<std::vector<Row>> ExecScan(uint64_t txn_id,
                                    const std::string& db_name,
                                    const ScanNode& scan,
                                    const std::vector<Value>& params);

  Engine* engine_;
};

}  // namespace mtdb::sql

#endif  // MTDB_SQL_EXECUTOR_H_
