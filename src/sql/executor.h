#ifndef MTDB_SQL_EXECUTOR_H_
#define MTDB_SQL_EXECUTOR_H_

#include <optional>
#include <string>
#include <vector>

#include "src/common/result.h"
#include "src/sql/ast.h"
#include "src/sql/expression.h"
#include "src/storage/engine.h"

namespace mtdb::sql {

// Result of executing one statement: a relation for queries, an affected-row
// count for DML/DDL.
struct QueryResult {
  std::vector<std::string> columns;
  std::vector<Row> rows;
  int64_t affected_rows = 0;

  // Convenience accessors for single-valued results.
  bool empty() const { return rows.empty(); }
  const Value& at(size_t row, size_t col) const { return rows[row][col]; }
};

// Executes parsed statements against an Engine within a caller-managed
// transaction. Performs its own lightweight planning:
//  * single-table access paths: PK point lookup, PK range scan, secondary
//    index lookup, full scan;
//  * left-deep nested-loop joins, using index lookups on the inner side when
//    the ON clause allows;
//  * grouping/aggregation, HAVING, ORDER BY, LIMIT.
//
// Locking is delegated to the engine: point reads take row S locks, scans
// take table S locks, point writes take row X locks, and non-PK-predicate
// UPDATE/DELETE escalate to a table X lock.
class SqlExecutor {
 public:
  explicit SqlExecutor(Engine* engine) : engine_(engine) {}

  Result<QueryResult> Execute(uint64_t txn_id, const std::string& db_name,
                              const Statement& stmt,
                              const std::vector<Value>& params = {});

  // Parses and executes in one step.
  Result<QueryResult> ExecuteSql(uint64_t txn_id, const std::string& db_name,
                                 const std::string& sql,
                                 const std::vector<Value>& params = {});

 private:
  struct Source {
    std::string alias;
    std::string table_name;
    const TableSchema* schema;
    const Expr* on = nullptr;  // join condition (null for FROM list entries)
  };

  Result<QueryResult> ExecSelect(uint64_t txn_id, const std::string& db_name,
                                 const SelectStatement& select,
                                 const std::vector<Value>& params);
  Result<QueryResult> ExecInsert(uint64_t txn_id, const std::string& db_name,
                                 const InsertStatement& insert,
                                 const std::vector<Value>& params);
  Result<QueryResult> ExecUpdate(uint64_t txn_id, const std::string& db_name,
                                 const UpdateStatement& update,
                                 const std::vector<Value>& params);
  Result<QueryResult> ExecDelete(uint64_t txn_id, const std::string& db_name,
                                 const DeleteStatement& del,
                                 const std::vector<Value>& params);

  // Fetches the rows of one table using the best access path the predicate
  // conjuncts allow. Rows come back as full table rows.
  Result<std::vector<Row>> FetchTableRows(
      uint64_t txn_id, const std::string& db_name, const Source& source,
      const std::vector<const Expr*>& conjuncts,
      const std::vector<Value>& params);

  Engine* engine_;
};

}  // namespace mtdb::sql

#endif  // MTDB_SQL_EXECUTOR_H_
