#ifndef MTDB_SQL_LEXER_H_
#define MTDB_SQL_LEXER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/result.h"

namespace mtdb::sql {

enum class TokenType {
  kIdentifier,   // table1, my_col  (also unquoted keywords; parser decides)
  kIntLiteral,   // 42
  kDoubleLiteral,  // 3.14
  kStringLiteral,  // 'abc' with '' escape
  kSymbol,       // ( ) , . * = < > <= >= <> != + - / % ? ;
  kEnd,
};

struct Token {
  TokenType type = TokenType::kEnd;
  std::string text;      // uppercased for identifiers? No: raw text.
  int64_t int_value = 0;
  double double_value = 0;
  size_t position = 0;   // byte offset in the SQL text, for error messages

  // Case-insensitive keyword/identifier comparison.
  bool Is(std::string_view keyword) const;
};

// Tokenizes a SQL string. Returns ParseError on malformed input (unterminated
// string literal, unexpected character). The token stream always ends with a
// kEnd token.
Result<std::vector<Token>> Tokenize(const std::string& sql);

}  // namespace mtdb::sql

#endif  // MTDB_SQL_LEXER_H_
