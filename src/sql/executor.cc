#include "src/sql/executor.h"

#include <algorithm>
#include <map>
#include <optional>
#include <utility>

#include "src/obs/metrics.h"

namespace mtdb::sql {

namespace {

// Evaluates a row-independent expression.
Result<Value> EvalConst(const Expr& expr, const std::vector<Value>& params) {
  RowLayout empty;
  ExprEvaluator evaluator(&empty, &params);
  Row no_row;
  return evaluator.Eval(expr, no_row);
}

std::string GroupKeyOf(const std::vector<Value>& values) {
  std::string key;
  for (const Value& v : values) {
    key += v.LockKey();
    key += '\x01';
  }
  return key;
}

}  // namespace

Result<QueryResult> SqlExecutor::ExecuteSql(uint64_t txn_id,
                                            const std::string& db_name,
                                            const std::string& sql,
                                            const std::vector<Value>& params) {
  MTDB_ASSIGN_OR_RETURN(std::shared_ptr<const PlannedStatement> plan,
                        engine_->GetPlan(db_name, sql));
  return ExecutePlan(txn_id, db_name, *plan, params);
}

Result<QueryResult> SqlExecutor::Execute(uint64_t txn_id,
                                         const std::string& db_name,
                                         const Statement& stmt,
                                         const std::vector<Value>& params) {
  Planner planner(engine_);
  MTDB_ASSIGN_OR_RETURN(std::unique_ptr<const PlannedStatement> plan,
                        planner.PlanBorrowed(db_name, stmt));
  return ExecutePlan(txn_id, db_name, *plan, params);
}

Result<QueryResult> SqlExecutor::ExecutePlan(uint64_t txn_id,
                                             const std::string& db_name,
                                             const PlannedStatement& plan,
                                             const std::vector<Value>& params) {
  static obs::Counter* execute_total =
      obs::MetricsRegistry::Global().GetCounter("mtdb_sql_execute_total", {});
  obs::Increment(execute_total);
  if (plan.explain) {
    QueryResult result;
    result.columns.push_back("plan");
    const std::string text = plan.Explain();
    size_t start = 0;
    while (start <= text.size()) {
      size_t end = text.find('\n', start);
      if (end == std::string::npos) end = text.size();
      result.rows.push_back(Row{Value(text.substr(start, end - start))});
      if (end == text.size()) break;
      start = end + 1;
    }
    return result;
  }
  switch (plan.kind) {
    case StatementKind::kSelect:
      return ExecSelect(txn_id, db_name, plan.select, params);
    case StatementKind::kInsert:
      return ExecInsert(txn_id, db_name, plan, params);
    case StatementKind::kUpdate:
      return ExecMutate(txn_id, db_name, plan.update, /*is_update=*/true,
                        params);
    case StatementKind::kDelete:
      return ExecMutate(txn_id, db_name, plan.del, /*is_update=*/false,
                        params);
    case StatementKind::kCreateTable:
    case StatementKind::kCreateIndex:
    case StatementKind::kDropTable:
      return ExecDdl(db_name, *plan.stmt);
  }
  return Status::Internal("unhandled statement kind");
}

Result<QueryResult> SqlExecutor::ExecDdl(const std::string& db_name,
                                         const Statement& stmt) {
  switch (stmt.kind) {
    case StatementKind::kCreateTable: {
      MTDB_RETURN_IF_ERROR(
          engine_->CreateTable(db_name, stmt.create_table.schema));
      QueryResult result;
      return result;
    }
    case StatementKind::kCreateIndex: {
      MTDB_RETURN_IF_ERROR(engine_->CreateIndex(
          db_name, stmt.create_index.table, stmt.create_index.index_name,
          stmt.create_index.column));
      QueryResult result;
      return result;
    }
    case StatementKind::kDropTable: {
      MTDB_RETURN_IF_ERROR(engine_->DropTable(db_name, stmt.drop_table.table));
      QueryResult result;
      return result;
    }
    default:
      return Status::Internal("not a DDL statement");
  }
}

// --- Access paths ---

Result<std::vector<Row>> SqlExecutor::ExecScan(
    uint64_t txn_id, const std::string& db_name, const ScanNode& scan,
    const std::vector<Value>& params) {
  std::vector<Row> rows;
  switch (scan.path) {
    case AccessPathKind::kPkPoint: {
      MTDB_ASSIGN_OR_RETURN(Value key, EvalConst(*scan.key, params));
      MTDB_ASSIGN_OR_RETURN(std::optional<Row> row,
                            engine_->Read(txn_id, db_name, scan.table, key));
      if (row.has_value()) rows.push_back(std::move(*row));
      return rows;
    }
    case AccessPathKind::kIndexProbe: {
      MTDB_ASSIGN_OR_RETURN(Value key, EvalConst(*scan.key, params));
      MTDB_ASSIGN_OR_RETURN(std::vector<Value> pks,
                            engine_->IndexLookup(txn_id, db_name, scan.table,
                                                 scan.index_column, key));
      for (const Value& pk : pks) {
        MTDB_ASSIGN_OR_RETURN(std::optional<Row> row,
                              engine_->Read(txn_id, db_name, scan.table, pk));
        if (row.has_value()) rows.push_back(std::move(*row));
      }
      return rows;
    }
    case AccessPathKind::kPkRange: {
      // Keep the tightest of the (inclusive) bounds; strict comparisons are
      // re-applied by the residual WHERE filter.
      std::optional<Value> range_lo, range_hi;
      for (const Expr* bound : scan.lo) {
        MTDB_ASSIGN_OR_RETURN(Value v, EvalConst(*bound, params));
        if (!range_lo || v > *range_lo) range_lo = std::move(v);
      }
      for (const Expr* bound : scan.hi) {
        MTDB_ASSIGN_OR_RETURN(Value v, EvalConst(*bound, params));
        if (!range_hi || v < *range_hi) range_hi = std::move(v);
      }
      MTDB_ASSIGN_OR_RETURN(auto scanned,
                            engine_->ScanRange(txn_id, db_name, scan.table,
                                               range_lo, range_hi));
      for (auto& [key, row] : scanned) rows.push_back(std::move(row));
      return rows;
    }
    case AccessPathKind::kFullScan: {
      MTDB_ASSIGN_OR_RETURN(auto scanned,
                            engine_->ScanTable(txn_id, db_name, scan.table));
      for (auto& [key, row] : scanned) rows.push_back(std::move(row));
      return rows;
    }
  }
  return Status::Internal("unhandled access path");
}

// --- SELECT ---

Result<QueryResult> SqlExecutor::ExecSelect(uint64_t txn_id,
                                            const std::string& db_name,
                                            const SelectPlan& plan,
                                            const std::vector<Value>& params) {
  MTDB_ASSIGN_OR_RETURN(std::vector<Row> combined,
                        ExecScan(txn_id, db_name, plan.driver, params));

  // Fold in each join, probing the inner side per outer row when the plan
  // chose a probe strategy.
  for (const JoinNode& join : plan.joins) {
    ExprEvaluator outer_eval(&join.outer_layout, &params);
    std::vector<Row> next;

    if (join.strategy != JoinStrategy::kScan) {
      for (const Row& outer_row : combined) {
        MTDB_ASSIGN_OR_RETURN(Value key,
                              outer_eval.Eval(*join.probe_key, outer_row));
        if (key.is_null()) continue;
        std::vector<Row> inner_rows;
        if (join.strategy == JoinStrategy::kPkProbe) {
          MTDB_ASSIGN_OR_RETURN(
              std::optional<Row> row,
              engine_->Read(txn_id, db_name, join.table, key));
          if (row.has_value()) inner_rows.push_back(std::move(*row));
        } else {
          MTDB_ASSIGN_OR_RETURN(std::vector<Value> pks,
                                engine_->IndexLookup(txn_id, db_name,
                                                     join.table,
                                                     join.probe_column, key));
          for (const Value& inner_pk : pks) {
            MTDB_ASSIGN_OR_RETURN(
                std::optional<Row> row,
                engine_->Read(txn_id, db_name, join.table, inner_pk));
            if (row.has_value()) inner_rows.push_back(std::move(*row));
          }
        }
        for (Row& inner : inner_rows) {
          Row joined = outer_row;
          joined.insert(joined.end(), inner.begin(), inner.end());
          next.push_back(std::move(joined));
        }
      }
    } else {
      // Full scan of the inner side, fetched once.
      ScanNode inner_scan;
      inner_scan.alias = join.alias;
      inner_scan.table = join.table;
      MTDB_ASSIGN_OR_RETURN(std::vector<Row> inner_rows,
                            ExecScan(txn_id, db_name, inner_scan, params));
      for (const Row& outer_row : combined) {
        for (const Row& inner : inner_rows) {
          Row joined = outer_row;
          joined.insert(joined.end(), inner.begin(), inner.end());
          next.push_back(std::move(joined));
        }
      }
    }

    // Apply the full ON condition as a residual filter.
    if (join.residual != nullptr) {
      ExprEvaluator joined_eval(&join.post_layout, &params);
      std::vector<Row> filtered;
      for (Row& row : next) {
        MTDB_ASSIGN_OR_RETURN(Value keep,
                              joined_eval.Eval(*join.residual, row));
        if (ExprEvaluator::IsTruthy(keep)) filtered.push_back(std::move(row));
      }
      next = std::move(filtered);
    }
    combined = std::move(next);
  }

  // Residual WHERE over the full layout.
  ExprEvaluator evaluator(&plan.layout, &params);
  if (plan.where != nullptr) {
    std::vector<Row> filtered;
    for (Row& row : combined) {
      MTDB_ASSIGN_OR_RETURN(Value keep, evaluator.Eval(*plan.where, row));
      if (ExprEvaluator::IsTruthy(keep)) filtered.push_back(std::move(row));
    }
    combined = std::move(filtered);
  }

  QueryResult result;
  for (const OutputColumn& out : plan.outputs) {
    result.columns.push_back(out.name);
  }

  // Rows paired with their pre-projection source row (for ORDER BY on
  // non-projected columns). For aggregating queries, produced_aggregates[i]
  // carries group i's aggregate values for ORDER BY re-evaluation.
  std::vector<std::pair<Row, Row>> produced;  // (projected, source/rep row)
  std::vector<std::map<std::string, Value>> produced_aggregates;

  if (!plan.aggregating) {
    for (Row& row : combined) {
      Row projected;
      projected.reserve(plan.outputs.size());
      for (const OutputColumn& out : plan.outputs) {
        if (out.expr == nullptr) {
          projected.push_back(row[out.slot]);
        } else {
          MTDB_ASSIGN_OR_RETURN(Value v, evaluator.Eval(*out.expr, row));
          projected.push_back(std::move(v));
        }
      }
      produced.emplace_back(std::move(projected), std::move(row));
    }
  } else {
    // Group rows.
    std::map<std::string, std::vector<Row>> groups;
    std::vector<std::string> group_order;
    if (plan.group_by.empty()) {
      groups[""] = std::move(combined);
      group_order.push_back("");
    } else {
      for (Row& row : combined) {
        std::vector<Value> key_values;
        for (const Expr* key_expr : plan.group_by) {
          MTDB_ASSIGN_OR_RETURN(Value v, evaluator.Eval(*key_expr, row));
          key_values.push_back(std::move(v));
        }
        std::string key = GroupKeyOf(key_values);
        if (groups.find(key) == groups.end()) group_order.push_back(key);
        groups[key].push_back(std::move(row));
      }
    }

    for (const std::string& key : group_order) {
      std::vector<Row>& group_rows = groups[key];
      if (group_rows.empty() && !plan.group_by.empty()) continue;
      std::map<std::string, Value> aggregates;
      for (const Expr* agg : plan.agg_nodes) {
        std::string fingerprint = agg->Fingerprint();
        if (aggregates.count(fingerprint) > 0) continue;
        // COUNT(*) / COUNT(e) / SUM / AVG / MIN / MAX
        if (agg->function == "COUNT" && agg->star) {
          aggregates[fingerprint] =
              Value(static_cast<int64_t>(group_rows.size()));
          continue;
        }
        int64_t count = 0;
        bool all_int = true;
        double sum = 0;
        int64_t int_sum = 0;
        std::optional<Value> min_v, max_v;
        for (const Row& row : group_rows) {
          MTDB_ASSIGN_OR_RETURN(Value v,
                                evaluator.Eval(*agg->children[0], row));
          if (v.is_null()) continue;
          ++count;
          if (v.is_numeric()) {
            sum += v.AsDouble();
            if (v.is_int()) int_sum += v.AsInt();
            else all_int = false;
          } else {
            all_int = false;
          }
          if (!min_v || v < *min_v) min_v = v;
          if (!max_v || v > *max_v) max_v = v;
        }
        if (agg->function == "COUNT") {
          aggregates[fingerprint] = Value(count);
        } else if (agg->function == "SUM") {
          aggregates[fingerprint] =
              count == 0 ? Value()
                         : (all_int ? Value(int_sum) : Value(sum));
        } else if (agg->function == "AVG") {
          aggregates[fingerprint] =
              count == 0 ? Value() : Value(sum / static_cast<double>(count));
        } else if (agg->function == "MIN") {
          aggregates[fingerprint] = min_v.value_or(Value());
        } else if (agg->function == "MAX") {
          aggregates[fingerprint] = max_v.value_or(Value());
        }
      }

      Row representative = group_rows.empty()
                               ? Row(plan.layout.size(), Value())
                               : group_rows.front();
      if (plan.having != nullptr) {
        MTDB_ASSIGN_OR_RETURN(
            Value keep, evaluator.EvalWithAggregates(*plan.having,
                                                     representative,
                                                     aggregates));
        if (!ExprEvaluator::IsTruthy(keep)) continue;
      }
      Row projected;
      for (const OutputColumn& out : plan.outputs) {
        if (out.expr == nullptr) {
          projected.push_back(representative[out.slot]);
        } else {
          MTDB_ASSIGN_OR_RETURN(
              Value v, evaluator.EvalWithAggregates(*out.expr, representative,
                                                    aggregates));
          projected.push_back(std::move(v));
        }
      }
      // Store the representative row and aggregate map alongside so ORDER BY
      // can re-evaluate expressions against this group below.
      produced.emplace_back(std::move(projected), std::move(representative));
      produced_aggregates.push_back(std::move(aggregates));
    }
  }

  // ORDER BY.
  if (!plan.order_by.empty()) {
    // Precompute sort keys.
    struct Keyed {
      std::vector<Value> keys;
      size_t index;
    };
    std::vector<Keyed> keyed;
    keyed.reserve(produced.size());
    for (size_t i = 0; i < produced.size(); ++i) {
      std::vector<Value> keys;
      for (const OrderKey& item : plan.order_by) {
        if (item.alias_slot >= 0) {
          keys.push_back(produced[i].first[item.alias_slot]);
        } else if (plan.aggregating) {
          MTDB_ASSIGN_OR_RETURN(
              Value v, evaluator.EvalWithAggregates(*item.expr,
                                                    produced[i].second,
                                                    produced_aggregates[i]));
          keys.push_back(std::move(v));
        } else {
          MTDB_ASSIGN_OR_RETURN(Value v,
                                evaluator.Eval(*item.expr, produced[i].second));
          keys.push_back(std::move(v));
        }
      }
      keyed.push_back(Keyed{std::move(keys), i});
    }
    std::stable_sort(keyed.begin(), keyed.end(),
                     [&plan](const Keyed& a, const Keyed& b) {
                       for (size_t k = 0; k < a.keys.size(); ++k) {
                         int cmp = a.keys[k].Compare(b.keys[k]);
                         if (cmp != 0) {
                           return plan.order_by[k].descending ? cmp > 0
                                                              : cmp < 0;
                         }
                       }
                       return false;
                     });
    std::vector<std::pair<Row, Row>> sorted;
    sorted.reserve(produced.size());
    for (const Keyed& k : keyed) sorted.push_back(std::move(produced[k.index]));
    produced = std::move(sorted);
  }

  // LIMIT + emit.
  int64_t limit = plan.limit < 0
                      ? static_cast<int64_t>(produced.size())
                      : std::min<int64_t>(plan.limit, produced.size());
  result.rows.reserve(limit);
  for (int64_t i = 0; i < limit; ++i) {
    result.rows.push_back(std::move(produced[i].first));
  }
  return result;
}

// --- INSERT / UPDATE / DELETE ---

Result<QueryResult> SqlExecutor::ExecInsert(uint64_t txn_id,
                                            const std::string& db_name,
                                            const PlannedStatement& plan,
                                            const std::vector<Value>& params) {
  const InsertPlan& insert = plan.insert;
  const InsertStatement& stmt = plan.stmt->insert;

  QueryResult result;
  for (const std::vector<ExprPtr>& value_exprs : stmt.rows) {
    if (value_exprs.size() != insert.column_map.size()) {
      return Status::InvalidArgument("VALUES arity mismatch");
    }
    Row row(insert.row_width, Value());
    for (size_t i = 0; i < value_exprs.size(); ++i) {
      MTDB_ASSIGN_OR_RETURN(Value v, EvalConst(*value_exprs[i], params));
      row[insert.column_map[i]] = std::move(v);
    }
    MTDB_RETURN_IF_ERROR(engine_->Insert(txn_id, db_name, insert.table, row));
    result.affected_rows++;
  }
  return result;
}

Result<QueryResult> SqlExecutor::ExecMutate(uint64_t txn_id,
                                            const std::string& db_name,
                                            const MutatePlan& plan,
                                            bool is_update,
                                            const std::vector<Value>& params) {
  ExprEvaluator evaluator(&plan.layout, &params);

  // Anything but a provable PK point escalates to a table X lock before
  // scanning (the executor's simple, correct protocol for predicate writes —
  // see DESIGN.md).
  if (!plan.pk_point) {
    MTDB_RETURN_IF_ERROR(
        engine_->LockTableExclusive(txn_id, db_name, plan.table));
  }

  MTDB_ASSIGN_OR_RETURN(std::vector<Row> candidates,
                        ExecScan(txn_id, db_name, plan.scan, params));

  QueryResult result;
  for (const Row& old_row : candidates) {
    if (plan.where != nullptr) {
      MTDB_ASSIGN_OR_RETURN(Value keep, evaluator.Eval(*plan.where, old_row));
      if (!ExprEvaluator::IsTruthy(keep)) continue;
    }
    if (is_update) {
      Row new_row = old_row;
      for (const auto& [index, expr] : plan.assignments) {
        MTDB_ASSIGN_OR_RETURN(Value v, evaluator.Eval(*expr, old_row));
        new_row[index] = std::move(v);
      }
      MTDB_RETURN_IF_ERROR(engine_->Update(txn_id, db_name, plan.table,
                                           old_row[plan.pk], new_row));
    } else {
      MTDB_RETURN_IF_ERROR(
          engine_->Delete(txn_id, db_name, plan.table, old_row[plan.pk]));
    }
    result.affected_rows++;
  }
  return result;
}

}  // namespace mtdb::sql
