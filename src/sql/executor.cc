#include "src/sql/executor.h"

#include <algorithm>
#include <map>

#include "src/sql/parser.h"

namespace mtdb::sql {

namespace {

// Flattens an AND tree into conjuncts.
void SplitConjuncts(const Expr* expr, std::vector<const Expr*>* out) {
  if (expr == nullptr) return;
  if (expr->kind == ExprKind::kBinary && expr->op == "AND") {
    SplitConjuncts(expr->children[0].get(), out);
    SplitConjuncts(expr->children[1].get(), out);
    return;
  }
  out->push_back(expr);
}

// True if the expression references no columns at all (literals, params,
// arithmetic over them) — i.e. it can be evaluated before any row is read.
bool IsRowIndependent(const Expr& expr) {
  if (expr.kind == ExprKind::kColumnRef) return false;
  if (expr.kind == ExprKind::kFunction) return false;
  for (const ExprPtr& child : expr.children) {
    if (child && !IsRowIndependent(*child)) return false;
  }
  return true;
}

// True if every column reference in `expr` resolves in `layout`.
bool ResolvesInLayout(const Expr& expr, const RowLayout& layout) {
  if (expr.kind == ExprKind::kColumnRef) {
    return layout.Resolve(expr.table, expr.column).ok();
  }
  for (const ExprPtr& child : expr.children) {
    if (child && !ResolvesInLayout(*child, layout)) return false;
  }
  return true;
}

// Evaluates a row-independent expression.
Result<Value> EvalConst(const Expr& expr, const std::vector<Value>& params) {
  RowLayout empty;
  ExprEvaluator evaluator(&empty, &params);
  Row no_row;
  return evaluator.Eval(expr, no_row);
}

// Default output column name for a select expression.
std::string DeriveAlias(const Expr& expr) {
  switch (expr.kind) {
    case ExprKind::kColumnRef:
      return expr.column;
    case ExprKind::kFunction:
      return expr.function + (expr.star ? "(*)" : "(...)");
    default:
      return "expr";
  }
}

// Collects aggregate function nodes in an expression tree.
void CollectAggregates(const Expr& expr, std::vector<const Expr*>* out) {
  if (expr.kind == ExprKind::kFunction && IsAggregateFunction(expr.function)) {
    out->push_back(&expr);
    return;  // nested aggregates not supported
  }
  for (const ExprPtr& child : expr.children) {
    if (child) CollectAggregates(*child, out);
  }
}

std::string GroupKeyOf(const std::vector<Value>& values) {
  std::string key;
  for (const Value& v : values) {
    key += v.LockKey();
    key += '\x01';
  }
  return key;
}

}  // namespace

Result<QueryResult> SqlExecutor::ExecuteSql(uint64_t txn_id,
                                            const std::string& db_name,
                                            const std::string& sql,
                                            const std::vector<Value>& params) {
  MTDB_ASSIGN_OR_RETURN(Statement stmt, Parse(sql));
  return Execute(txn_id, db_name, stmt, params);
}

Result<QueryResult> SqlExecutor::Execute(uint64_t txn_id,
                                         const std::string& db_name,
                                         const Statement& stmt,
                                         const std::vector<Value>& params) {
  switch (stmt.kind) {
    case StatementKind::kSelect:
      return ExecSelect(txn_id, db_name, stmt.select, params);
    case StatementKind::kInsert:
      return ExecInsert(txn_id, db_name, stmt.insert, params);
    case StatementKind::kUpdate:
      return ExecUpdate(txn_id, db_name, stmt.update, params);
    case StatementKind::kDelete:
      return ExecDelete(txn_id, db_name, stmt.del, params);
    case StatementKind::kCreateTable: {
      MTDB_RETURN_IF_ERROR(
          engine_->CreateTable(db_name, stmt.create_table.schema));
      QueryResult result;
      return result;
    }
    case StatementKind::kCreateIndex: {
      MTDB_RETURN_IF_ERROR(engine_->CreateIndex(
          db_name, stmt.create_index.table, stmt.create_index.index_name,
          stmt.create_index.column));
      QueryResult result;
      return result;
    }
    case StatementKind::kDropTable: {
      Database* db = engine_->GetDatabase(db_name);
      if (db == nullptr) return Status::NotFound("database " + db_name);
      MTDB_RETURN_IF_ERROR(db->DropTable(stmt.drop_table.table));
      QueryResult result;
      return result;
    }
  }
  return Status::Internal("unhandled statement kind");
}

// --- Access-path selection & row fetching ---

Result<std::vector<Row>> SqlExecutor::FetchTableRows(
    uint64_t txn_id, const std::string& db_name, const Source& source,
    const std::vector<const Expr*>& conjuncts,
    const std::vector<Value>& params) {
  const TableSchema& schema = *source.schema;
  int pk = schema.primary_key_index();

  auto column_of_source = [&](const Expr& e) -> int {
    if (e.kind != ExprKind::kColumnRef) return -1;
    if (!e.table.empty() && e.table != source.alias) return -1;
    return schema.ColumnIndex(e.column);
  };

  // Scan the conjuncts for usable constraints on this table.
  std::optional<Value> point_key;
  std::optional<std::pair<std::string, Value>> index_probe;  // column, key
  std::optional<Value> range_lo, range_hi;
  for (const Expr* conjunct : conjuncts) {
    if (conjunct->kind != ExprKind::kBinary) continue;
    const std::string& op = conjunct->op;
    if (op != "=" && op != "<" && op != "<=" && op != ">" && op != ">=") {
      continue;
    }
    const Expr* lhs = conjunct->children[0].get();
    const Expr* rhs = conjunct->children[1].get();
    int column = column_of_source(*lhs);
    const Expr* const_side = rhs;
    std::string effective_op = op;
    if (column < 0) {
      column = column_of_source(*rhs);
      const_side = lhs;
      // Flip the comparison when the column is on the right.
      if (op == "<") effective_op = ">";
      else if (op == "<=") effective_op = ">=";
      else if (op == ">") effective_op = "<";
      else if (op == ">=") effective_op = "<=";
    }
    if (column < 0 || !IsRowIndependent(*const_side)) continue;
    MTDB_ASSIGN_OR_RETURN(Value constant, EvalConst(*const_side, params));
    if (effective_op == "=") {
      if (column == pk) {
        point_key = constant;
        break;  // best possible path
      }
      if (!index_probe.has_value() &&
          schema.IndexOnColumn(column) != nullptr) {
        index_probe = {schema.columns()[column].name, constant};
      }
    } else if (column == pk) {
      // Inclusive bounds; strict comparisons are tightened by the residual
      // WHERE filter applied later.
      if (effective_op == ">" || effective_op == ">=") {
        if (!range_lo || constant > *range_lo) range_lo = constant;
      } else {
        if (!range_hi || constant < *range_hi) range_hi = constant;
      }
    }
  }

  std::vector<Row> rows;
  if (point_key.has_value()) {
    MTDB_ASSIGN_OR_RETURN(
        std::optional<Row> row,
        engine_->Read(txn_id, db_name, source.table_name, *point_key));
    if (row.has_value()) rows.push_back(std::move(*row));
    return rows;
  }
  if (index_probe.has_value()) {
    MTDB_ASSIGN_OR_RETURN(
        std::vector<Value> pks,
        engine_->IndexLookup(txn_id, db_name, source.table_name,
                             index_probe->first, index_probe->second));
    for (const Value& key : pks) {
      MTDB_ASSIGN_OR_RETURN(
          std::optional<Row> row,
          engine_->Read(txn_id, db_name, source.table_name, key));
      if (row.has_value()) rows.push_back(std::move(*row));
    }
    return rows;
  }
  if (range_lo.has_value() || range_hi.has_value()) {
    MTDB_ASSIGN_OR_RETURN(
        auto scanned, engine_->ScanRange(txn_id, db_name, source.table_name,
                                         range_lo, range_hi));
    for (auto& [key, row] : scanned) rows.push_back(std::move(row));
    return rows;
  }
  MTDB_ASSIGN_OR_RETURN(auto scanned,
                        engine_->ScanTable(txn_id, db_name, source.table_name));
  for (auto& [key, row] : scanned) rows.push_back(std::move(row));
  return rows;
}

// --- SELECT ---

Result<QueryResult> SqlExecutor::ExecSelect(uint64_t txn_id,
                                            const std::string& db_name,
                                            const SelectStatement& select,
                                            const std::vector<Value>& params) {
  if (select.from.empty()) {
    return Status::InvalidArgument("SELECT requires a FROM clause");
  }
  Database* db = engine_->GetDatabase(db_name);
  if (db == nullptr) return Status::NotFound("database " + db_name);

  // Resolve sources: FROM entries (cross) then JOIN entries (with ON).
  std::vector<Source> sources;
  for (const TableRef& ref : select.from) {
    Table* table = db->GetTable(ref.table);
    if (table == nullptr) return Status::NotFound("table " + ref.table);
    sources.push_back(
        Source{ref.EffectiveName(), ref.table, &table->schema(), nullptr});
  }
  for (const JoinClause& join : select.joins) {
    Table* table = db->GetTable(join.table.table);
    if (table == nullptr) {
      return Status::NotFound("table " + join.table.table);
    }
    sources.push_back(Source{join.table.EffectiveName(), join.table.table,
                             &table->schema(), join.on.get()});
  }

  std::vector<const Expr*> where_conjuncts;
  SplitConjuncts(select.where.get(), &where_conjuncts);

  // Seed with the first source, choosing its access path from WHERE.
  RowLayout layout;
  layout.Append(sources[0].alias, *sources[0].schema);
  MTDB_ASSIGN_OR_RETURN(
      std::vector<Row> combined,
      FetchTableRows(txn_id, db_name, sources[0], where_conjuncts, params));

  // Fold in each remaining source with a nested-loop (index-assisted when
  // possible) join.
  for (size_t s = 1; s < sources.size(); ++s) {
    const Source& source = sources[s];
    RowLayout outer_layout = layout;
    layout.Append(source.alias, *source.schema);

    std::vector<const Expr*> on_conjuncts;
    SplitConjuncts(source.on, &on_conjuncts);

    // Look for inner.col = f(outer) to drive an index/PK lookup per outer
    // row.
    const TableSchema& schema = *source.schema;
    int pk = schema.primary_key_index();
    int probe_column = -1;
    const Expr* probe_expr = nullptr;
    for (const Expr* conjunct : on_conjuncts) {
      if (conjunct->kind != ExprKind::kBinary || conjunct->op != "=") continue;
      for (int side = 0; side < 2; ++side) {
        const Expr* col_side = conjunct->children[side].get();
        const Expr* other = conjunct->children[1 - side].get();
        if (col_side->kind != ExprKind::kColumnRef) continue;
        if (!col_side->table.empty() && col_side->table != source.alias) {
          continue;
        }
        int column = schema.ColumnIndex(col_side->column);
        if (column < 0) continue;
        // Qualified-name collision guard: an unqualified column that also
        // resolves in the outer layout is ambiguous; skip the fast path.
        if (col_side->table.empty() &&
            outer_layout.Resolve("", col_side->column).ok()) {
          continue;
        }
        if (!ResolvesInLayout(*other, outer_layout)) continue;
        if (column == pk ||
            schema.IndexOnColumn(column) != nullptr) {
          // Prefer PK probes over secondary-index probes.
          if (probe_column < 0 || column == pk) {
            probe_column = column;
            probe_expr = other;
            if (column == pk) break;
          }
        }
      }
      if (probe_column == pk && probe_expr != nullptr) break;
    }

    ExprEvaluator outer_eval(&outer_layout, &params);
    std::vector<Row> next;

    if (probe_expr != nullptr) {
      const std::string& probe_name = schema.columns()[probe_column].name;
      for (const Row& outer_row : combined) {
        MTDB_ASSIGN_OR_RETURN(Value key, outer_eval.Eval(*probe_expr, outer_row));
        if (key.is_null()) continue;
        std::vector<Row> inner_rows;
        if (probe_column == pk) {
          MTDB_ASSIGN_OR_RETURN(
              std::optional<Row> row,
              engine_->Read(txn_id, db_name, source.table_name, key));
          if (row.has_value()) inner_rows.push_back(std::move(*row));
        } else {
          MTDB_ASSIGN_OR_RETURN(std::vector<Value> pks,
                                engine_->IndexLookup(txn_id, db_name,
                                                     source.table_name,
                                                     probe_name, key));
          for (const Value& inner_pk : pks) {
            MTDB_ASSIGN_OR_RETURN(
                std::optional<Row> row,
                engine_->Read(txn_id, db_name, source.table_name, inner_pk));
            if (row.has_value()) inner_rows.push_back(std::move(*row));
          }
        }
        for (Row& inner : inner_rows) {
          Row joined = outer_row;
          joined.insert(joined.end(), inner.begin(), inner.end());
          next.push_back(std::move(joined));
        }
      }
    } else {
      // Full scan of the inner side, fetched once.
      MTDB_ASSIGN_OR_RETURN(
          std::vector<Row> inner_rows,
          FetchTableRows(txn_id, db_name, source, {}, params));
      for (const Row& outer_row : combined) {
        for (const Row& inner : inner_rows) {
          Row joined = outer_row;
          joined.insert(joined.end(), inner.begin(), inner.end());
          next.push_back(std::move(joined));
        }
      }
    }

    // Apply the full ON condition as a residual filter.
    if (source.on != nullptr) {
      ExprEvaluator joined_eval(&layout, &params);
      std::vector<Row> filtered;
      for (Row& row : next) {
        MTDB_ASSIGN_OR_RETURN(Value keep, joined_eval.Eval(*source.on, row));
        if (ExprEvaluator::IsTruthy(keep)) filtered.push_back(std::move(row));
      }
      next = std::move(filtered);
    }
    combined = std::move(next);
  }

  // Residual WHERE over the full layout.
  ExprEvaluator evaluator(&layout, &params);
  if (select.where != nullptr) {
    std::vector<Row> filtered;
    for (Row& row : combined) {
      MTDB_ASSIGN_OR_RETURN(Value keep, evaluator.Eval(*select.where, row));
      if (ExprEvaluator::IsTruthy(keep)) filtered.push_back(std::move(row));
    }
    combined = std::move(filtered);
  }

  // Expand the projection list (stars) and name output columns.
  struct OutputColumn {
    const Expr* expr = nullptr;  // null => direct slot copy
    int slot = -1;
    std::string name;
  };
  std::vector<OutputColumn> outputs;
  std::vector<ExprPtr> owned_exprs;  // keeps desugared exprs alive
  bool any_aggregate = false;
  for (const SelectItem& item : select.items) {
    if (item.star) {
      for (size_t i = 0; i < layout.size(); ++i) {
        if (!item.star_table.empty() &&
            layout.qualifier_at(i) != item.star_table) {
          continue;
        }
        outputs.push_back(
            OutputColumn{nullptr, static_cast<int>(i), layout.name_at(i)});
      }
      continue;
    }
    if (item.expr->ContainsAggregate()) any_aggregate = true;
    outputs.push_back(OutputColumn{
        item.expr.get(), -1,
        item.alias.empty() ? DeriveAlias(*item.expr) : item.alias});
  }
  bool aggregating = any_aggregate || !select.group_by.empty() ||
                     (select.having != nullptr);

  QueryResult result;
  for (const OutputColumn& out : outputs) result.columns.push_back(out.name);

  // Rows paired with their pre-projection source row (for ORDER BY on
  // non-projected columns). For aggregating queries, produced_aggregates[i]
  // carries group i's aggregate values for ORDER BY re-evaluation.
  std::vector<std::pair<Row, Row>> produced;  // (projected, source/rep row)
  std::vector<std::map<std::string, Value>> produced_aggregates;

  if (!aggregating) {
    for (Row& row : combined) {
      Row projected;
      projected.reserve(outputs.size());
      for (const OutputColumn& out : outputs) {
        if (out.expr == nullptr) {
          projected.push_back(row[out.slot]);
        } else {
          MTDB_ASSIGN_OR_RETURN(Value v, evaluator.Eval(*out.expr, row));
          projected.push_back(std::move(v));
        }
      }
      produced.emplace_back(std::move(projected), std::move(row));
    }
  } else {
    // Group rows.
    std::map<std::string, std::vector<Row>> groups;
    std::vector<std::string> group_order;
    if (select.group_by.empty()) {
      groups[""] = std::move(combined);
      group_order.push_back("");
    } else {
      for (Row& row : combined) {
        std::vector<Value> key_values;
        for (const ExprPtr& key_expr : select.group_by) {
          MTDB_ASSIGN_OR_RETURN(Value v, evaluator.Eval(*key_expr, row));
          key_values.push_back(std::move(v));
        }
        std::string key = GroupKeyOf(key_values);
        if (groups.find(key) == groups.end()) group_order.push_back(key);
        groups[key].push_back(std::move(row));
      }
    }

    // Aggregates needed anywhere in the statement.
    std::vector<const Expr*> agg_nodes;
    for (const OutputColumn& out : outputs) {
      if (out.expr != nullptr) CollectAggregates(*out.expr, &agg_nodes);
    }
    if (select.having != nullptr) {
      CollectAggregates(*select.having, &agg_nodes);
    }
    for (const OrderByItem& item : select.order_by) {
      CollectAggregates(*item.expr, &agg_nodes);
    }

    for (const std::string& key : group_order) {
      std::vector<Row>& group_rows = groups[key];
      if (group_rows.empty() && !select.group_by.empty()) continue;
      std::map<std::string, Value> aggregates;
      for (const Expr* agg : agg_nodes) {
        std::string fingerprint = agg->Fingerprint();
        if (aggregates.count(fingerprint) > 0) continue;
        // COUNT(*) / COUNT(e) / SUM / AVG / MIN / MAX
        if (agg->function == "COUNT" && agg->star) {
          aggregates[fingerprint] =
              Value(static_cast<int64_t>(group_rows.size()));
          continue;
        }
        int64_t count = 0;
        bool all_int = true;
        double sum = 0;
        int64_t int_sum = 0;
        std::optional<Value> min_v, max_v;
        for (const Row& row : group_rows) {
          MTDB_ASSIGN_OR_RETURN(Value v,
                                evaluator.Eval(*agg->children[0], row));
          if (v.is_null()) continue;
          ++count;
          if (v.is_numeric()) {
            sum += v.AsDouble();
            if (v.is_int()) int_sum += v.AsInt();
            else all_int = false;
          } else {
            all_int = false;
          }
          if (!min_v || v < *min_v) min_v = v;
          if (!max_v || v > *max_v) max_v = v;
        }
        if (agg->function == "COUNT") {
          aggregates[fingerprint] = Value(count);
        } else if (agg->function == "SUM") {
          aggregates[fingerprint] =
              count == 0 ? Value()
                         : (all_int ? Value(int_sum) : Value(sum));
        } else if (agg->function == "AVG") {
          aggregates[fingerprint] =
              count == 0 ? Value() : Value(sum / static_cast<double>(count));
        } else if (agg->function == "MIN") {
          aggregates[fingerprint] = min_v.value_or(Value());
        } else if (agg->function == "MAX") {
          aggregates[fingerprint] = max_v.value_or(Value());
        }
      }

      Row representative = group_rows.empty() ? Row(layout.size(), Value())
                                              : group_rows.front();
      if (select.having != nullptr) {
        MTDB_ASSIGN_OR_RETURN(
            Value keep, evaluator.EvalWithAggregates(*select.having,
                                                     representative,
                                                     aggregates));
        if (!ExprEvaluator::IsTruthy(keep)) continue;
      }
      Row projected;
      for (const OutputColumn& out : outputs) {
        if (out.expr == nullptr) {
          projected.push_back(representative[out.slot]);
        } else {
          MTDB_ASSIGN_OR_RETURN(
              Value v, evaluator.EvalWithAggregates(*out.expr, representative,
                                                    aggregates));
          projected.push_back(std::move(v));
        }
      }
      // Stash the aggregate map alongside via representative row for ORDER BY
      // evaluation below: we sort using projected values when the ORDER BY
      // expression matches an output alias, otherwise re-evaluate with this
      // group's aggregates. To keep that possible we sort aggregating queries
      // immediately here by deferring: store representative and aggregates.
      produced.emplace_back(std::move(projected), std::move(representative));
      produced_aggregates.push_back(std::move(aggregates));
    }
  }

  // ORDER BY.
  if (!select.order_by.empty()) {
    // Precompute sort keys.
    struct Keyed {
      std::vector<Value> keys;
      size_t index;
    };
    std::vector<Keyed> keyed;
    keyed.reserve(produced.size());
    for (size_t i = 0; i < produced.size(); ++i) {
      std::vector<Value> keys;
      for (const OrderByItem& item : select.order_by) {
        // Alias reference into the projected row?
        int alias_slot = -1;
        if (item.expr->kind == ExprKind::kColumnRef &&
            item.expr->table.empty()) {
          for (size_t c = 0; c < outputs.size(); ++c) {
            if (outputs[c].name == item.expr->column) {
              alias_slot = static_cast<int>(c);
              break;
            }
          }
        }
        if (alias_slot >= 0) {
          keys.push_back(produced[i].first[alias_slot]);
        } else if (aggregating) {
          MTDB_ASSIGN_OR_RETURN(
              Value v, evaluator.EvalWithAggregates(*item.expr,
                                                    produced[i].second,
                                                    produced_aggregates[i]));
          keys.push_back(std::move(v));
        } else {
          MTDB_ASSIGN_OR_RETURN(Value v,
                                evaluator.Eval(*item.expr, produced[i].second));
          keys.push_back(std::move(v));
        }
      }
      keyed.push_back(Keyed{std::move(keys), i});
    }
    std::stable_sort(keyed.begin(), keyed.end(),
                     [&select](const Keyed& a, const Keyed& b) {
                       for (size_t k = 0; k < a.keys.size(); ++k) {
                         int cmp = a.keys[k].Compare(b.keys[k]);
                         if (cmp != 0) {
                           return select.order_by[k].descending ? cmp > 0
                                                                : cmp < 0;
                         }
                       }
                       return false;
                     });
    std::vector<std::pair<Row, Row>> sorted;
    sorted.reserve(produced.size());
    for (const Keyed& k : keyed) sorted.push_back(std::move(produced[k.index]));
    produced = std::move(sorted);
  }

  // LIMIT + emit.
  int64_t limit = select.limit < 0
                      ? static_cast<int64_t>(produced.size())
                      : std::min<int64_t>(select.limit, produced.size());
  result.rows.reserve(limit);
  for (int64_t i = 0; i < limit; ++i) {
    result.rows.push_back(std::move(produced[i].first));
  }
  return result;
}

// --- INSERT / UPDATE / DELETE ---

Result<QueryResult> SqlExecutor::ExecInsert(uint64_t txn_id,
                                            const std::string& db_name,
                                            const InsertStatement& insert,
                                            const std::vector<Value>& params) {
  Database* db = engine_->GetDatabase(db_name);
  if (db == nullptr) return Status::NotFound("database " + db_name);
  Table* table = db->GetTable(insert.table);
  if (table == nullptr) return Status::NotFound("table " + insert.table);
  const TableSchema& schema = table->schema();

  // Map of value position -> schema column index.
  std::vector<int> column_map;
  if (insert.columns.empty()) {
    for (size_t i = 0; i < schema.num_columns(); ++i) {
      column_map.push_back(static_cast<int>(i));
    }
  } else {
    for (const std::string& name : insert.columns) {
      int index = schema.ColumnIndex(name);
      if (index < 0) return Status::InvalidArgument("unknown column " + name);
      column_map.push_back(index);
    }
  }

  QueryResult result;
  for (const std::vector<ExprPtr>& value_exprs : insert.rows) {
    if (value_exprs.size() != column_map.size()) {
      return Status::InvalidArgument("VALUES arity mismatch");
    }
    Row row(schema.num_columns(), Value());
    for (size_t i = 0; i < value_exprs.size(); ++i) {
      MTDB_ASSIGN_OR_RETURN(Value v, EvalConst(*value_exprs[i], params));
      row[column_map[i]] = std::move(v);
    }
    MTDB_RETURN_IF_ERROR(engine_->Insert(txn_id, db_name, insert.table, row));
    result.affected_rows++;
  }
  return result;
}

Result<QueryResult> SqlExecutor::ExecUpdate(uint64_t txn_id,
                                            const std::string& db_name,
                                            const UpdateStatement& update,
                                            const std::vector<Value>& params) {
  Database* db = engine_->GetDatabase(db_name);
  if (db == nullptr) return Status::NotFound("database " + db_name);
  Table* table = db->GetTable(update.table);
  if (table == nullptr) return Status::NotFound("table " + update.table);
  const TableSchema& schema = table->schema();

  RowLayout layout;
  layout.Append(update.table, schema);
  ExprEvaluator evaluator(&layout, &params);

  // Resolve assignment targets once.
  std::vector<std::pair<int, const Expr*>> assignments;
  for (const auto& [column, expr] : update.assignments) {
    int index = schema.ColumnIndex(column);
    if (index < 0) return Status::InvalidArgument("unknown column " + column);
    assignments.emplace_back(index, expr.get());
  }

  std::vector<const Expr*> conjuncts;
  SplitConjuncts(update.where.get(), &conjuncts);

  Source source{update.table, update.table, &schema, nullptr};
  // Detect the PK point path; anything else escalates to a table X lock
  // before scanning (the executor's simple, correct protocol for predicate
  // writes — see DESIGN.md).
  bool pk_point = false;
  int pk = schema.primary_key_index();
  for (const Expr* conjunct : conjuncts) {
    if (conjunct->kind == ExprKind::kBinary && conjunct->op == "=") {
      for (int side = 0; side < 2; ++side) {
        const Expr* col = conjunct->children[side].get();
        const Expr* other = conjunct->children[1 - side].get();
        if (col->kind == ExprKind::kColumnRef &&
            schema.ColumnIndex(col->column) == pk &&
            IsRowIndependent(*other)) {
          pk_point = true;
        }
      }
    }
  }
  if (!pk_point) {
    MTDB_RETURN_IF_ERROR(
        engine_->LockTableExclusive(txn_id, db_name, update.table));
  }

  MTDB_ASSIGN_OR_RETURN(
      std::vector<Row> candidates,
      FetchTableRows(txn_id, db_name, source, conjuncts, params));

  QueryResult result;
  for (const Row& old_row : candidates) {
    if (update.where != nullptr) {
      MTDB_ASSIGN_OR_RETURN(Value keep, evaluator.Eval(*update.where, old_row));
      if (!ExprEvaluator::IsTruthy(keep)) continue;
    }
    Row new_row = old_row;
    for (const auto& [index, expr] : assignments) {
      MTDB_ASSIGN_OR_RETURN(Value v, evaluator.Eval(*expr, old_row));
      new_row[index] = std::move(v);
    }
    MTDB_RETURN_IF_ERROR(
        engine_->Update(txn_id, db_name, update.table, old_row[pk], new_row));
    result.affected_rows++;
  }
  return result;
}

Result<QueryResult> SqlExecutor::ExecDelete(uint64_t txn_id,
                                            const std::string& db_name,
                                            const DeleteStatement& del,
                                            const std::vector<Value>& params) {
  Database* db = engine_->GetDatabase(db_name);
  if (db == nullptr) return Status::NotFound("database " + db_name);
  Table* table = db->GetTable(del.table);
  if (table == nullptr) return Status::NotFound("table " + del.table);
  const TableSchema& schema = table->schema();

  RowLayout layout;
  layout.Append(del.table, schema);
  ExprEvaluator evaluator(&layout, &params);

  std::vector<const Expr*> conjuncts;
  SplitConjuncts(del.where.get(), &conjuncts);

  Source source{del.table, del.table, &schema, nullptr};
  int pk = schema.primary_key_index();
  bool pk_point = false;
  for (const Expr* conjunct : conjuncts) {
    if (conjunct->kind == ExprKind::kBinary && conjunct->op == "=") {
      for (int side = 0; side < 2; ++side) {
        const Expr* col = conjunct->children[side].get();
        const Expr* other = conjunct->children[1 - side].get();
        if (col->kind == ExprKind::kColumnRef &&
            schema.ColumnIndex(col->column) == pk &&
            IsRowIndependent(*other)) {
          pk_point = true;
        }
      }
    }
  }
  if (!pk_point) {
    MTDB_RETURN_IF_ERROR(
        engine_->LockTableExclusive(txn_id, db_name, del.table));
  }

  MTDB_ASSIGN_OR_RETURN(
      std::vector<Row> candidates,
      FetchTableRows(txn_id, db_name, source, conjuncts, params));

  QueryResult result;
  for (const Row& row : candidates) {
    if (del.where != nullptr) {
      MTDB_ASSIGN_OR_RETURN(Value keep, evaluator.Eval(*del.where, row));
      if (!ExprEvaluator::IsTruthy(keep)) continue;
    }
    MTDB_RETURN_IF_ERROR(
        engine_->Delete(txn_id, db_name, del.table, row[pk]));
    result.affected_rows++;
  }
  return result;
}

}  // namespace mtdb::sql
