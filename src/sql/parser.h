#ifndef MTDB_SQL_PARSER_H_
#define MTDB_SQL_PARSER_H_

#include <string>

#include "src/common/result.h"
#include "src/sql/ast.h"

namespace mtdb::sql {

// Parses one SQL statement (optionally terminated by ';'). Supported grammar:
//
//   SELECT [DISTINCT is not supported] select_list
//     FROM table [alias] {, table [alias]}
//     {[INNER] JOIN table [alias] ON expr}
//     [WHERE expr] [GROUP BY expr {, expr}] [HAVING expr]
//     [ORDER BY expr [ASC|DESC] {, ...}] [LIMIT n]
//   INSERT INTO table [(col, ...)] VALUES (expr, ...) {, (expr, ...)}
//   UPDATE table SET col = expr {, col = expr} [WHERE expr]
//   DELETE FROM table [WHERE expr]
//   CREATE TABLE table (col TYPE [PRIMARY KEY] [NOT NULL], ...
//                       [, PRIMARY KEY (col)])
//   CREATE INDEX name ON table (col)
//   DROP TABLE table
//   EXPLAIN stmt            (any of the above; returns the physical plan)
//
// Expressions: OR / AND / NOT, comparisons (= <> < <= > >=, LIKE, IN (...),
// IS [NOT] NULL, BETWEEN a AND b), + - * / %, unary -, literals, ?, column
// refs, aggregate functions COUNT/SUM/AVG/MIN/MAX.
Result<Statement> Parse(const std::string& sql);

}  // namespace mtdb::sql

#endif  // MTDB_SQL_PARSER_H_
