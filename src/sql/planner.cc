#include "src/sql/planner.h"

#include <utility>

#include "src/obs/metrics.h"
#include "src/storage/engine.h"

namespace mtdb::sql {

namespace {

// Flattens an AND tree into conjuncts.
void SplitConjuncts(const Expr* expr, std::vector<const Expr*>* out) {
  if (expr == nullptr) return;
  if (expr->kind == ExprKind::kBinary && expr->op == "AND") {
    SplitConjuncts(expr->children[0].get(), out);
    SplitConjuncts(expr->children[1].get(), out);
    return;
  }
  out->push_back(expr);
}

// True if the expression references no columns at all (literals, params,
// arithmetic over them) — i.e. it can be evaluated before any row is read.
bool IsRowIndependent(const Expr& expr) {
  if (expr.kind == ExprKind::kColumnRef) return false;
  if (expr.kind == ExprKind::kFunction) return false;
  for (const ExprPtr& child : expr.children) {
    if (child && !IsRowIndependent(*child)) return false;
  }
  return true;
}

// True if every column reference in `expr` resolves in `layout`.
bool ResolvesInLayout(const Expr& expr, const RowLayout& layout) {
  if (expr.kind == ExprKind::kColumnRef) {
    return layout.Resolve(expr.table, expr.column).ok();
  }
  for (const ExprPtr& child : expr.children) {
    if (child && !ResolvesInLayout(*child, layout)) return false;
  }
  return true;
}

// Default output column name for a select expression.
std::string DeriveAlias(const Expr& expr) {
  switch (expr.kind) {
    case ExprKind::kColumnRef:
      return expr.column;
    case ExprKind::kFunction:
      return expr.function + (expr.star ? "(*)" : "(...)");
    default:
      return "expr";
  }
}

// Collects aggregate function nodes in an expression tree.
void CollectAggregates(const Expr& expr, std::vector<const Expr*>* out) {
  if (expr.kind == ExprKind::kFunction && IsAggregateFunction(expr.function)) {
    out->push_back(&expr);
    return;  // nested aggregates not supported
  }
  for (const ExprPtr& child : expr.children) {
    if (child) CollectAggregates(*child, out);
  }
}

// One table in scope during planning.
struct Source {
  std::string alias;
  std::string table_name;
  const TableSchema* schema;
  const Expr* on = nullptr;  // join condition (null for FROM list entries)
};

// Chooses the best access path the predicate conjuncts allow. Selection is
// purely structural (which column, which operator, row-independent other
// side) — constants are evaluated at execution time.
void PlanAccessPath(const TableSchema& schema, const Source& source,
                    const std::vector<const Expr*>& conjuncts,
                    ScanNode* scan) {
  scan->alias = source.alias;
  scan->table = source.table_name;
  scan->path = AccessPathKind::kFullScan;
  int pk = schema.primary_key_index();

  auto column_of_source = [&](const Expr& e) -> int {
    if (e.kind != ExprKind::kColumnRef) return -1;
    if (!e.table.empty() && e.table != source.alias) return -1;
    return schema.ColumnIndex(e.column);
  };

  const Expr* point_key = nullptr;
  const Expr* index_key = nullptr;
  std::string index_column;
  std::vector<const Expr*> lo, hi;
  for (const Expr* conjunct : conjuncts) {
    if (conjunct->kind != ExprKind::kBinary) continue;
    const std::string& op = conjunct->op;
    if (op != "=" && op != "<" && op != "<=" && op != ">" && op != ">=") {
      continue;
    }
    const Expr* lhs = conjunct->children[0].get();
    const Expr* rhs = conjunct->children[1].get();
    int column = column_of_source(*lhs);
    const Expr* const_side = rhs;
    std::string effective_op = op;
    if (column < 0) {
      column = column_of_source(*rhs);
      const_side = lhs;
      // Flip the comparison when the column is on the right.
      if (op == "<") effective_op = ">";
      else if (op == "<=") effective_op = ">=";
      else if (op == ">") effective_op = "<";
      else if (op == ">=") effective_op = "<=";
    }
    if (column < 0 || !IsRowIndependent(*const_side)) continue;
    if (effective_op == "=") {
      if (column == pk) {
        point_key = const_side;
        break;  // best possible path
      }
      if (index_key == nullptr && schema.IndexOnColumn(column) != nullptr) {
        index_key = const_side;
        index_column = schema.columns()[column].name;
      }
    } else if (column == pk) {
      // Inclusive bounds; strict comparisons are tightened by the residual
      // WHERE filter applied later.
      if (effective_op == ">" || effective_op == ">=") {
        lo.push_back(const_side);
      } else {
        hi.push_back(const_side);
      }
    }
  }

  if (point_key != nullptr) {
    scan->path = AccessPathKind::kPkPoint;
    scan->key = point_key;
  } else if (index_key != nullptr) {
    scan->path = AccessPathKind::kIndexProbe;
    scan->key = index_key;
    scan->index_column = std::move(index_column);
  } else if (!lo.empty() || !hi.empty()) {
    scan->path = AccessPathKind::kPkRange;
    scan->lo = std::move(lo);
    scan->hi = std::move(hi);
  }
}

Status PlanSelect(Database* db, const SelectStatement& select,
                  SelectPlan* plan) {
  if (select.from.empty()) {
    return Status::InvalidArgument("SELECT requires a FROM clause");
  }

  // Resolve sources: FROM entries (cross) then JOIN entries (with ON).
  std::vector<Source> sources;
  for (const TableRef& ref : select.from) {
    Table* table = db->GetTable(ref.table);
    if (table == nullptr) return Status::NotFound("table " + ref.table);
    sources.push_back(
        Source{ref.EffectiveName(), ref.table, &table->schema(), nullptr});
  }
  for (const JoinClause& join : select.joins) {
    Table* table = db->GetTable(join.table.table);
    if (table == nullptr) {
      return Status::NotFound("table " + join.table.table);
    }
    sources.push_back(Source{join.table.EffectiveName(), join.table.table,
                             &table->schema(), join.on.get()});
  }

  std::vector<const Expr*> where_conjuncts;
  SplitConjuncts(select.where.get(), &where_conjuncts);

  // Seed with the first source, choosing its access path from WHERE.
  RowLayout layout;
  layout.Append(sources[0].alias, *sources[0].schema);
  PlanAccessPath(*sources[0].schema, sources[0], where_conjuncts,
                 &plan->driver);

  // Fold in each remaining source with a nested-loop (index-assisted when
  // possible) join.
  for (size_t s = 1; s < sources.size(); ++s) {
    const Source& source = sources[s];
    JoinNode node;
    node.alias = source.alias;
    node.table = source.table_name;
    node.residual = source.on;
    node.outer_layout = layout;
    layout.Append(source.alias, *source.schema);
    node.post_layout = layout;

    std::vector<const Expr*> on_conjuncts;
    SplitConjuncts(source.on, &on_conjuncts);

    // Look for inner.col = f(outer) to drive an index/PK lookup per outer
    // row.
    const TableSchema& schema = *source.schema;
    int pk = schema.primary_key_index();
    int probe_column = -1;
    const Expr* probe_expr = nullptr;
    for (const Expr* conjunct : on_conjuncts) {
      if (conjunct->kind != ExprKind::kBinary || conjunct->op != "=") continue;
      for (int side = 0; side < 2; ++side) {
        const Expr* col_side = conjunct->children[side].get();
        const Expr* other = conjunct->children[1 - side].get();
        if (col_side->kind != ExprKind::kColumnRef) continue;
        if (!col_side->table.empty() && col_side->table != source.alias) {
          continue;
        }
        int column = schema.ColumnIndex(col_side->column);
        if (column < 0) continue;
        // Qualified-name collision guard: an unqualified column that also
        // resolves in the outer layout is ambiguous; skip the fast path.
        if (col_side->table.empty() &&
            node.outer_layout.Resolve("", col_side->column).ok()) {
          continue;
        }
        if (!ResolvesInLayout(*other, node.outer_layout)) continue;
        if (column == pk || schema.IndexOnColumn(column) != nullptr) {
          // Prefer PK probes over secondary-index probes.
          if (probe_column < 0 || column == pk) {
            probe_column = column;
            probe_expr = other;
            if (column == pk) break;
          }
        }
      }
      if (probe_column == pk && probe_expr != nullptr) break;
    }

    if (probe_expr != nullptr) {
      node.strategy = probe_column == pk ? JoinStrategy::kPkProbe
                                         : JoinStrategy::kIndexProbe;
      node.probe_key = probe_expr;
      if (node.strategy == JoinStrategy::kIndexProbe) {
        node.probe_column = schema.columns()[probe_column].name;
      }
    }
    plan->joins.push_back(std::move(node));
  }

  plan->layout = layout;
  plan->where = select.where.get();

  // Expand the projection list (stars) and name output columns.
  bool any_aggregate = false;
  for (const SelectItem& item : select.items) {
    if (item.star) {
      for (size_t i = 0; i < layout.size(); ++i) {
        if (!item.star_table.empty() &&
            layout.qualifier_at(i) != item.star_table) {
          continue;
        }
        plan->outputs.push_back(
            OutputColumn{nullptr, static_cast<int>(i), layout.name_at(i)});
      }
      continue;
    }
    if (item.expr->ContainsAggregate()) any_aggregate = true;
    plan->outputs.push_back(OutputColumn{
        item.expr.get(), -1,
        item.alias.empty() ? DeriveAlias(*item.expr) : item.alias});
  }
  plan->aggregating = any_aggregate || !select.group_by.empty() ||
                      (select.having != nullptr);

  // Aggregates needed anywhere in the statement.
  for (const OutputColumn& out : plan->outputs) {
    if (out.expr != nullptr) CollectAggregates(*out.expr, &plan->agg_nodes);
  }
  if (select.having != nullptr) {
    CollectAggregates(*select.having, &plan->agg_nodes);
  }
  for (const OrderByItem& item : select.order_by) {
    CollectAggregates(*item.expr, &plan->agg_nodes);
  }

  for (const ExprPtr& key : select.group_by) {
    plan->group_by.push_back(key.get());
  }
  plan->having = select.having.get();

  for (const OrderByItem& item : select.order_by) {
    OrderKey key;
    key.expr = item.expr.get();
    key.descending = item.descending;
    // Alias reference into the projected row?
    if (item.expr->kind == ExprKind::kColumnRef && item.expr->table.empty()) {
      for (size_t c = 0; c < plan->outputs.size(); ++c) {
        if (plan->outputs[c].name == item.expr->column) {
          key.alias_slot = static_cast<int>(c);
          break;
        }
      }
    }
    plan->order_by.push_back(key);
  }
  plan->limit = select.limit;
  return Status::OK();
}

Status PlanInsert(Database* db, const InsertStatement& insert,
                  InsertPlan* plan) {
  Table* table = db->GetTable(insert.table);
  if (table == nullptr) return Status::NotFound("table " + insert.table);
  const TableSchema& schema = table->schema();

  plan->table = insert.table;
  plan->row_width = schema.num_columns();
  // Map of value position -> schema column index.
  if (insert.columns.empty()) {
    for (size_t i = 0; i < schema.num_columns(); ++i) {
      plan->column_map.push_back(static_cast<int>(i));
    }
  } else {
    for (const std::string& name : insert.columns) {
      int index = schema.ColumnIndex(name);
      if (index < 0) return Status::InvalidArgument("unknown column " + name);
      plan->column_map.push_back(index);
    }
  }
  return Status::OK();
}

Status PlanMutate(
    Database* db, const std::string& table_name, const Expr* where,
    const std::vector<std::pair<std::string, ExprPtr>>* set_assignments,
    MutatePlan* plan) {
  Table* table = db->GetTable(table_name);
  if (table == nullptr) return Status::NotFound("table " + table_name);
  const TableSchema& schema = table->schema();

  plan->table = table_name;
  plan->layout.Append(table_name, schema);
  plan->where = where;
  plan->pk = schema.primary_key_index();

  // Resolve assignment targets once (UPDATE only).
  if (set_assignments != nullptr) {
    for (const auto& [column, expr] : *set_assignments) {
      int index = schema.ColumnIndex(column);
      if (index < 0) return Status::InvalidArgument("unknown column " + column);
      plan->assignments.emplace_back(index, expr.get());
    }
  }

  std::vector<const Expr*> conjuncts;
  SplitConjuncts(where, &conjuncts);

  // Detect the PK point path; anything else escalates to a table X lock
  // before scanning (the executor's simple, correct protocol for predicate
  // writes — see DESIGN.md).
  for (const Expr* conjunct : conjuncts) {
    if (conjunct->kind == ExprKind::kBinary && conjunct->op == "=") {
      for (int side = 0; side < 2; ++side) {
        const Expr* col = conjunct->children[side].get();
        const Expr* other = conjunct->children[1 - side].get();
        if (col->kind == ExprKind::kColumnRef &&
            schema.ColumnIndex(col->column) == plan->pk &&
            IsRowIndependent(*other)) {
          plan->pk_point = true;
        }
      }
    }
  }

  Source source{table_name, table_name, &schema, nullptr};
  PlanAccessPath(schema, source, conjuncts, &plan->scan);
  return Status::OK();
}

std::string PathLabel(const ScanNode& scan) {
  switch (scan.path) {
    case AccessPathKind::kPkPoint:
      return "pk-point";
    case AccessPathKind::kIndexProbe:
      return "index-probe(" + scan.index_column + ")";
    case AccessPathKind::kPkRange:
      return "pk-range";
    case AccessPathKind::kFullScan:
      return "full-scan";
  }
  return "?";
}

std::string ScanLine(const ScanNode& scan) {
  std::string line = "scan " + scan.table;
  if (scan.alias != scan.table) line += " as " + scan.alias;
  line += " [" + PathLabel(scan) + "]";
  return line;
}

std::string JoinLine(const JoinNode& join) {
  std::string line = "join " + join.table;
  if (join.alias != join.table) line += " as " + join.alias;
  switch (join.strategy) {
    case JoinStrategy::kPkProbe:
      line += " [pk-probe]";
      break;
    case JoinStrategy::kIndexProbe:
      line += " [index-probe(" + join.probe_column + ")]";
      break;
    case JoinStrategy::kScan:
      line += " [nested-loop-scan]";
      break;
  }
  return line;
}

std::string JoinExprs(const std::vector<const Expr*>& exprs) {
  std::string out;
  for (const Expr* e : exprs) {
    if (!out.empty()) out += ", ";
    out += ExprToString(*e);
  }
  return out;
}

}  // namespace

std::string ExprToString(const Expr& expr) {
  switch (expr.kind) {
    case ExprKind::kLiteral:
      return expr.literal.ToString();
    case ExprKind::kColumnRef:
      return expr.table.empty() ? expr.column : expr.table + "." + expr.column;
    case ExprKind::kParam:
      return "?";
    case ExprKind::kUnary:
      return expr.op + "(" + ExprToString(*expr.children[0]) + ")";
    case ExprKind::kBinary:
      return "(" + ExprToString(*expr.children[0]) + " " + expr.op + " " +
             ExprToString(*expr.children[1]) + ")";
    case ExprKind::kFunction: {
      if (expr.star) return expr.function + "(*)";
      std::string args;
      for (const ExprPtr& child : expr.children) {
        if (!args.empty()) args += ", ";
        args += ExprToString(*child);
      }
      return expr.function + "(" + args + ")";
    }
    case ExprKind::kInList: {
      std::string list;
      for (size_t i = 1; i < expr.children.size(); ++i) {
        if (!list.empty()) list += ", ";
        list += ExprToString(*expr.children[i]);
      }
      return ExprToString(*expr.children[0]) +
             (expr.negated ? " NOT IN (" : " IN (") + list + ")";
    }
    case ExprKind::kIsNull:
      return ExprToString(*expr.children[0]) +
             (expr.negated ? " IS NOT NULL" : " IS NULL");
  }
  return "?expr?";
}

std::string PlannedStatement::Explain() const {
  std::string out;
  auto line = [&out](const std::string& text) {
    out += text;
    out += '\n';
  };
  switch (kind) {
    case StatementKind::kSelect: {
      line("select");
      line("  " + ScanLine(select.driver));
      for (const JoinNode& join : select.joins) line("  " + JoinLine(join));
      if (select.where != nullptr) {
        line("  filter " + ExprToString(*select.where));
      }
      if (select.aggregating) {
        std::string agg = "  aggregate";
        if (!select.agg_nodes.empty()) agg += " " + JoinExprs(select.agg_nodes);
        if (!select.group_by.empty()) {
          agg += " group-by " + JoinExprs(select.group_by);
        }
        line(agg);
      }
      if (select.having != nullptr) {
        line("  having " + ExprToString(*select.having));
      }
      if (!select.order_by.empty()) {
        std::string sort = "  sort ";
        for (size_t i = 0; i < select.order_by.size(); ++i) {
          if (i > 0) sort += ", ";
          sort += ExprToString(*select.order_by[i].expr);
          if (select.order_by[i].descending) sort += " desc";
        }
        line(sort);
      }
      if (select.limit >= 0) {
        line("  limit " + std::to_string(select.limit));
      }
      std::string project = "  project ";
      for (size_t i = 0; i < select.outputs.size(); ++i) {
        if (i > 0) project += ", ";
        project += select.outputs[i].name;
      }
      line(project);
      break;
    }
    case StatementKind::kInsert:
      line("insert " + insert.table + " (" +
           std::to_string(stmt->insert.rows.size()) + " rows)");
      break;
    case StatementKind::kUpdate:
    case StatementKind::kDelete: {
      const MutatePlan& plan = kind == StatementKind::kUpdate ? update : del;
      std::string head = kind == StatementKind::kUpdate ? "update" : "delete";
      head += " " + plan.table + " [" + PathLabel(plan.scan) + "]";
      if (!plan.pk_point) head += " [table-x-lock]";
      line(head);
      for (const auto& [index, expr] : plan.assignments) {
        line("  set " + plan.layout.name_at(index) + " = " +
             ExprToString(*expr));
      }
      if (plan.where != nullptr) {
        line("  filter " + ExprToString(*plan.where));
      }
      break;
    }
    case StatementKind::kCreateTable:
      line("create-table " + stmt->create_table.schema.name());
      break;
    case StatementKind::kCreateIndex:
      line("create-index " + stmt->create_index.index_name + " on " +
           stmt->create_index.table + "(" + stmt->create_index.column + ")");
      break;
    case StatementKind::kDropTable:
      line("drop-table " + stmt->drop_table.table);
      break;
  }
  if (!out.empty() && out.back() == '\n') out.pop_back();
  return out;
}

Status Planner::PlanInto(const std::string& db_name, const Statement& stmt,
                         PlannedStatement* plan) {
  plan->kind = stmt.kind;
  plan->explain = stmt.explain;
  switch (stmt.kind) {
    case StatementKind::kSelect:
    case StatementKind::kInsert:
    case StatementKind::kUpdate:
    case StatementKind::kDelete:
      break;
    default:
      return Status::OK();  // DDL needs no physical plan
  }
  Database* db = engine_->GetDatabase(db_name);
  if (db == nullptr) return Status::NotFound("database " + db_name);
  switch (stmt.kind) {
    case StatementKind::kSelect:
      return PlanSelect(db, stmt.select, &plan->select);
    case StatementKind::kInsert:
      return PlanInsert(db, stmt.insert, &plan->insert);
    case StatementKind::kUpdate:
      return PlanMutate(db, stmt.update.table, stmt.update.where.get(),
                        &stmt.update.assignments, &plan->update);
    case StatementKind::kDelete:
      return PlanMutate(db, stmt.del.table, stmt.del.where.get(), nullptr,
                        &plan->del);
    default:
      return Status::OK();
  }
}

namespace {

void CountPlanned() {
  static obs::Counter* plan_total =
      obs::MetricsRegistry::Global().GetCounter("mtdb_sql_plan_total", {});
  obs::Increment(plan_total);
}

}  // namespace

Result<std::shared_ptr<const PlannedStatement>> Planner::Plan(
    const std::string& db_name, Statement stmt) {
  CountPlanned();
  auto plan = std::make_shared<PlannedStatement>();
  plan->owned_stmt = std::move(stmt);
  plan->stmt = &plan->owned_stmt;
  MTDB_RETURN_IF_ERROR(PlanInto(db_name, plan->owned_stmt, plan.get()));
  return std::shared_ptr<const PlannedStatement>(std::move(plan));
}

Result<std::unique_ptr<const PlannedStatement>> Planner::PlanBorrowed(
    const std::string& db_name, const Statement& stmt) {
  CountPlanned();
  auto plan = std::make_unique<PlannedStatement>();
  plan->stmt = &stmt;
  MTDB_RETURN_IF_ERROR(PlanInto(db_name, stmt, plan.get()));
  return std::unique_ptr<const PlannedStatement>(std::move(plan));
}

}  // namespace mtdb::sql
