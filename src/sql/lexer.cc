#include "src/sql/lexer.h"

#include <cctype>

namespace mtdb::sql {

bool Token::Is(std::string_view keyword) const {
  if (type != TokenType::kIdentifier && type != TokenType::kSymbol) {
    return false;
  }
  if (text.size() != keyword.size()) return false;
  for (size_t i = 0; i < text.size(); ++i) {
    if (std::toupper(static_cast<unsigned char>(text[i])) !=
        std::toupper(static_cast<unsigned char>(keyword[i]))) {
      return false;
    }
  }
  return true;
}

Result<std::vector<Token>> Tokenize(const std::string& sql) {
  std::vector<Token> tokens;
  size_t i = 0;
  const size_t n = sql.size();
  while (i < n) {
    char c = sql[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    // -- line comments
    if (c == '-' && i + 1 < n && sql[i + 1] == '-') {
      while (i < n && sql[i] != '\n') ++i;
      continue;
    }
    Token token;
    token.position = i;
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      size_t start = i;
      while (i < n && (std::isalnum(static_cast<unsigned char>(sql[i])) ||
                       sql[i] == '_')) {
        ++i;
      }
      token.type = TokenType::kIdentifier;
      token.text = sql.substr(start, i - start);
    } else if (std::isdigit(static_cast<unsigned char>(c))) {
      size_t start = i;
      bool is_double = false;
      while (i < n && std::isdigit(static_cast<unsigned char>(sql[i]))) ++i;
      if (i < n && sql[i] == '.' && i + 1 < n &&
          std::isdigit(static_cast<unsigned char>(sql[i + 1]))) {
        is_double = true;
        ++i;
        while (i < n && std::isdigit(static_cast<unsigned char>(sql[i]))) ++i;
      }
      token.text = sql.substr(start, i - start);
      if (is_double) {
        token.type = TokenType::kDoubleLiteral;
        token.double_value = std::stod(token.text);
      } else {
        token.type = TokenType::kIntLiteral;
        token.int_value = std::stoll(token.text);
      }
    } else if (c == '\'') {
      ++i;
      std::string text;
      bool closed = false;
      while (i < n) {
        if (sql[i] == '\'') {
          if (i + 1 < n && sql[i + 1] == '\'') {  // escaped quote
            text.push_back('\'');
            i += 2;
            continue;
          }
          closed = true;
          ++i;
          break;
        }
        text.push_back(sql[i]);
        ++i;
      }
      if (!closed) {
        return Status::ParseError("unterminated string literal at offset " +
                                  std::to_string(token.position));
      }
      token.type = TokenType::kStringLiteral;
      token.text = std::move(text);
    } else {
      // Two-character operators first.
      if (i + 1 < n) {
        std::string two = sql.substr(i, 2);
        if (two == "<=" || two == ">=" || two == "<>" || two == "!=") {
          token.type = TokenType::kSymbol;
          token.text = two == "!=" ? "<>" : two;
          i += 2;
          tokens.push_back(std::move(token));
          continue;
        }
      }
      static constexpr std::string_view kSingles = "(),.*=<>+-/%?;";
      if (kSingles.find(c) == std::string_view::npos) {
        return Status::ParseError(std::string("unexpected character '") + c +
                                  "' at offset " + std::to_string(i));
      }
      token.type = TokenType::kSymbol;
      token.text = std::string(1, c);
      ++i;
    }
    tokens.push_back(std::move(token));
  }
  Token end;
  end.type = TokenType::kEnd;
  end.position = n;
  tokens.push_back(end);
  return tokens;
}

}  // namespace mtdb::sql
