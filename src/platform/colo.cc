#include "src/platform/colo.h"

#include <cmath>

namespace mtdb::platform {

double GeoDistanceKm(const GeoPoint& a, const GeoPoint& b) {
  constexpr double kEarthRadiusKm = 6371.0;
  constexpr double kDegToRad = 3.14159265358979323846 / 180.0;
  double lat1 = a.latitude * kDegToRad;
  double lat2 = b.latitude * kDegToRad;
  double dlat = (b.latitude - a.latitude) * kDegToRad;
  double dlon = (b.longitude - a.longitude) * kDegToRad;
  double h = std::sin(dlat / 2) * std::sin(dlat / 2) +
             std::cos(lat1) * std::cos(lat2) * std::sin(dlon / 2) *
                 std::sin(dlon / 2);
  return 2 * kEarthRadiusKm * std::asin(std::min(1.0, std::sqrt(h)));
}

Colo::Colo(ColoOptions options)
    : options_(std::move(options)), free_pool_(options_.free_pool_machines) {}

int Colo::AddCluster() {
  platform::Guard lock(mu_);
  auto cluster =
      std::make_unique<ClusterController>(options_.cluster_options);
  for (int i = 0; i < options_.machines_per_cluster; ++i) {
    cluster->AddMachine(options_.machine_options);
  }
  clusters_.push_back(std::move(cluster));
  return static_cast<int>(clusters_.size()) - 1;
}

ClusterController* Colo::cluster(int id) const {
  platform::Guard lock(mu_);
  if (id < 0 || static_cast<size_t>(id) >= clusters_.size()) return nullptr;
  return clusters_[id].get();
}

size_t Colo::cluster_count() const {
  platform::Guard lock(mu_);
  return clusters_.size();
}

Status Colo::CreateDatabase(const std::string& db_name, int num_replicas) {
  if (failed()) return Status::Unavailable("colo " + name() + " is down");
  if (cluster_count() == 0) AddCluster();
  int best = -1;
  size_t best_load = SIZE_MAX;
  {
    platform::Guard lock(mu_);
    if (db_to_cluster_.count(db_name) > 0) {
      return Status::AlreadyExists("database " + db_name + " in colo " +
                                   name());
    }
    for (size_t c = 0; c < clusters_.size(); ++c) {
      size_t load = clusters_[c]->DatabaseNames().size();
      if (load < best_load) {
        best_load = load;
        best = static_cast<int>(c);
      }
    }
  }
  ClusterController* target = cluster(best);
  Status status = target->CreateDatabase(db_name, num_replicas);
  if (status.code() == StatusCode::kResourceExhausted) {
    // Grow the cluster from the free pool, then retry (the colo controller
    // "manages a pool of free machines and adds them to clusters as
    // needed").
    while (static_cast<int>(target->machine_count()) < num_replicas &&
           GrantMachine(best).ok()) {
    }
    status = target->CreateDatabase(db_name, num_replicas);
  }
  if (status.ok()) {
    platform::Guard lock(mu_);
    db_to_cluster_[db_name] = best;
  }
  return status;
}

Result<ClusterController*> Colo::ClusterFor(const std::string& db_name) const {
  platform::Guard lock(mu_);
  auto it = db_to_cluster_.find(db_name);
  if (it == db_to_cluster_.end()) {
    return Status::NotFound("database " + db_name + " not in colo " + name());
  }
  return clusters_[it->second].get();
}

bool Colo::HostsDatabase(const std::string& db_name) const {
  platform::Guard lock(mu_);
  return db_to_cluster_.count(db_name) > 0;
}

std::vector<std::string> Colo::DatabaseNames() const {
  platform::Guard lock(mu_);
  std::vector<std::string> names;
  for (const auto& [name, cluster] : db_to_cluster_) names.push_back(name);
  return names;
}

Result<std::unique_ptr<Connection>> Colo::Connect(const std::string& db_name) {
  if (failed()) return Status::Unavailable("colo " + name() + " is down");
  MTDB_ASSIGN_OR_RETURN(ClusterController * cluster, ClusterFor(db_name));
  return cluster->Connect(db_name);
}

Status Colo::GrantMachine(int cluster_id) {
  ClusterController* target = cluster(cluster_id);
  if (target == nullptr) {
    return Status::InvalidArgument("no cluster " + std::to_string(cluster_id));
  }
  int available = free_pool_.load();
  while (available > 0) {
    if (free_pool_.compare_exchange_weak(available, available - 1)) {
      target->AddMachine(options_.machine_options);
      return Status::OK();
    }
  }
  return Status::ResourceExhausted("free machine pool of colo " + name() +
                                   " is empty");
}

}  // namespace mtdb::platform
