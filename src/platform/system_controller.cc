#include "src/platform/system_controller.h"

#include <algorithm>

#include "src/common/logging.h"
#include "src/sql/parser.h"

namespace mtdb::platform {

namespace {

bool IsWriteSql(const std::string& sql) {
  auto parsed = sql::Parse(sql);
  if (!parsed.ok()) return false;
  switch (parsed->kind) {
    case sql::StatementKind::kInsert:
    case sql::StatementKind::kUpdate:
    case sql::StatementKind::kDelete:
      return true;
    default:
      return false;
  }
}

}  // namespace

// ===== PlatformConnection =====

PlatformConnection::PlatformConnection(SystemController* system,
                                       std::string db_name,
                                       std::string colo_name,
                                       std::unique_ptr<Connection> inner,
                                       bool capture_writes)
    : system_(system),
      db_name_(std::move(db_name)),
      colo_name_(std::move(colo_name)),
      inner_(std::move(inner)),
      capture_writes_(capture_writes) {}

Status PlatformConnection::Begin() {
  txn_writes_.clear();
  return inner_->Begin();
}

Result<sql::QueryResult> PlatformConnection::Execute(
    const std::string& sql, const std::vector<Value>& params) {
  bool autocommit = !inner_->in_transaction();
  auto result = inner_->Execute(sql, params);
  if (result.ok() && capture_writes_ && IsWriteSql(sql)) {
    if (autocommit) {
      system_->EnqueueShipment(db_name_, {{sql, params}});
    } else {
      txn_writes_.push_back({sql, params});
    }
  }
  return result;
}

Status PlatformConnection::Commit() {
  Status status = inner_->Commit();
  if (status.ok() && capture_writes_ && !txn_writes_.empty()) {
    system_->EnqueueShipment(db_name_, std::move(txn_writes_));
  }
  txn_writes_.clear();
  return status;
}

Status PlatformConnection::Abort() {
  txn_writes_.clear();
  return inner_->Abort();
}

// ===== SystemController =====

SystemController::SystemController(SystemOptions options)
    : options_(options), shipper_([this] { ShipperLoop(); }) {}

SystemController::~SystemController() {
  {
    platform::Guard lock(queue_mu_);
    stop_ = true;
  }
  queue_cv_.NotifyAll();
  if (shipper_.joinable()) shipper_.join();
}

int SystemController::AddColo(ColoOptions options) {
  platform::Guard lock(mu_);
  colos_.push_back(std::make_unique<Colo>(std::move(options)));
  return static_cast<int>(colos_.size()) - 1;
}

Colo* SystemController::colo(int id) const {
  platform::Guard lock(mu_);
  if (id < 0 || static_cast<size_t>(id) >= colos_.size()) return nullptr;
  return colos_[id].get();
}

Colo* SystemController::colo(const std::string& name) const {
  platform::Guard lock(mu_);
  for (const auto& c : colos_) {
    if (c->name() == name) return c.get();
  }
  return nullptr;
}

size_t SystemController::colo_count() const {
  platform::Guard lock(mu_);
  return colos_.size();
}

Status SystemController::CreateDatabase(const std::string& db_name,
                                        GeoPoint owner_location,
                                        int replicas_per_colo) {
  if (replicas_per_colo <= 0) {
    replicas_per_colo = options_.default_replicas_per_colo;
  }
  // Rank alive colos by proximity to the owner.
  std::vector<Colo*> ranked;
  {
    platform::Guard lock(mu_);
    if (routes_.count(db_name) > 0) {
      return Status::AlreadyExists("database " + db_name);
    }
    for (const auto& c : colos_) {
      if (!c->failed()) ranked.push_back(c.get());
    }
  }
  if (ranked.empty()) return Status::Unavailable("no alive colo");
  std::sort(ranked.begin(), ranked.end(),
            [&owner_location](Colo* a, Colo* b) {
              return GeoDistanceKm(a->location(), owner_location) <
                     GeoDistanceKm(b->location(), owner_location);
            });
  Colo* primary = ranked[0];
  MTDB_RETURN_IF_ERROR(primary->CreateDatabase(db_name, replicas_per_colo));
  DbRoute route;
  route.primary_colo = primary->name();
  if (ranked.size() > 1) {
    Colo* secondary = ranked[1];
    Status status = secondary->CreateDatabase(db_name, replicas_per_colo);
    if (status.ok()) route.secondary_colo = secondary->name();
  }
  platform::Guard lock(mu_);
  routes_[db_name] = route;
  return Status::OK();
}

Result<std::string> SystemController::PrimaryColoOf(
    const std::string& db_name) const {
  platform::Guard lock(mu_);
  auto it = routes_.find(db_name);
  if (it == routes_.end()) return Status::NotFound("database " + db_name);
  return it->second.primary_colo;
}

Result<std::string> SystemController::SecondaryColoOf(
    const std::string& db_name) const {
  platform::Guard lock(mu_);
  auto it = routes_.find(db_name);
  if (it == routes_.end()) return Status::NotFound("database " + db_name);
  if (it->second.secondary_colo.empty()) {
    return Status::NotFound("no secondary colo for " + db_name);
  }
  return it->second.secondary_colo;
}

Result<std::unique_ptr<PlatformConnection>> SystemController::Connect(
    const std::string& db_name, GeoPoint client_location) {
  (void)client_location;  // reads go to the primary for consistency
  DbRoute route;
  {
    platform::Guard lock(mu_);
    auto it = routes_.find(db_name);
    if (it == routes_.end()) return Status::NotFound("database " + db_name);
    route = it->second;
  }
  Colo* primary = colo(route.primary_colo);
  if (primary != nullptr && !primary->failed()) {
    MTDB_ASSIGN_OR_RETURN(std::unique_ptr<Connection> inner,
                          primary->Connect(db_name));
    bool capture = !route.secondary_colo.empty();
    return std::unique_ptr<PlatformConnection>(new PlatformConnection(
        this, db_name, route.primary_colo, std::move(inner), capture));
  }
  // Disaster path: the primary colo is down; serve from the secondary with
  // weaker guarantees (asynchronously shipped writes may be missing).
  if (!route.secondary_colo.empty()) {
    Colo* secondary = colo(route.secondary_colo);
    if (secondary != nullptr && !secondary->failed()) {
      MTDB_ASSIGN_OR_RETURN(std::unique_ptr<Connection> inner,
                            secondary->Connect(db_name));
      return std::unique_ptr<PlatformConnection>(
          new PlatformConnection(this, db_name, route.secondary_colo,
                                 std::move(inner), /*capture_writes=*/false));
    }
  }
  return Status::Unavailable("no alive colo hosts " + db_name);
}

Status SystemController::FailoverDatabase(const std::string& db_name) {
  platform::Guard lock(mu_);
  auto it = routes_.find(db_name);
  if (it == routes_.end()) return Status::NotFound("database " + db_name);
  if (it->second.secondary_colo.empty()) {
    return Status::FailedPrecondition("no secondary colo for " + db_name);
  }
  std::swap(it->second.primary_colo, it->second.secondary_colo);
  return Status::OK();
}

void SystemController::EnqueueShipment(
    const std::string& db_name,
    std::vector<PlatformConnection::BufferedWrite> writes) {
  std::string target;
  {
    platform::Guard lock(mu_);
    auto it = routes_.find(db_name);
    if (it == routes_.end() || it->second.secondary_colo.empty()) return;
    target = it->second.secondary_colo;
  }
  {
    platform::Guard lock(queue_mu_);
    queue_.push_back(ShipTask{db_name, target, std::move(writes)});
  }
  queue_cv_.NotifyAll();
}

void SystemController::ShipperLoop() {
  while (true) {
    ShipTask task;
    {
      platform::UniqueLock lock(queue_mu_);
      while (!stop_ && queue_.empty()) queue_cv_.Wait(lock);
      if (queue_.empty()) {
        if (stop_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop_front();
      in_flight_++;
    }
    if (options_.replication_lag_ms > 0) {
      std::this_thread::sleep_for(
          std::chrono::milliseconds(options_.replication_lag_ms));
    }
    Colo* target = colo(task.target_colo);
    if (target != nullptr && !target->failed()) {
      auto conn = target->Connect(task.db_name);
      if (conn.ok()) {
        if ((*conn)->Begin().ok()) {
          bool ok = true;
          for (const auto& write : task.writes) {
            if (!(*conn)->Execute(write.sql, write.params).ok()) {
              ok = false;
              break;
            }
          }
          if (ok) {
            (void)(*conn)->Commit();
            shipped_.fetch_add(1);
          } else if ((*conn)->in_transaction()) {
            (void)(*conn)->Abort();
          }
        }
      }
    }
    {
      platform::Guard lock(queue_mu_);
      in_flight_--;
    }
    queue_cv_.NotifyAll();
  }
}

void SystemController::DrainReplication() {
  platform::UniqueLock lock(queue_mu_);
  while (!queue_.empty() || in_flight_ != 0) queue_cv_.Wait(lock);
}

}  // namespace mtdb::platform
