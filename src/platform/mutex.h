#ifndef MTDB_PLATFORM_MUTEX_H_
#define MTDB_PLATFORM_MUTEX_H_

#include <chrono>
#include <condition_variable>
#include <map>
#include <mutex>
#include <set>
#include <shared_mutex>
#include <string>
#include <vector>

#include "src/analysis/invariants.h"
#include "src/platform/thread_annotations.h"

namespace mtdb {
namespace platform {

// The platform's locking vocabulary. Everything outside src/platform locks
// through these wrappers (enforced by tools/mtdblint rule raw-mutex); in
// exchange every lock in the system gets two layers of proof:
//
//  1. Compile time — the classes carry Clang thread-safety capability
//     annotations, so members declared MTDB_GUARDED_BY(mu_) are checked on
//     every path of every build with -Wthread-safety (CMake option
//     MTDB_THREAD_SAFETY, gated in CI).
//  2. Run time — acquisitions feed the lockdep-style LockOrderGraph below,
//     which aborts on the *potential* for deadlock (a lock-order inversion),
//     not just on deadlocks a test run happens to hit.

// Runtime lock-order (lockdep-style) checker.
//
// Instrumented mutexes are grouped into *classes* by name — every
// LockManager::mu_ across all engine instances shares one class — and the
// graph records a directed edge A -> B the first time any thread acquires a
// class-B mutex while holding a class-A one. An acquisition whose edge would
// close a cycle is a lock-order inversion: two threads interleaving those
// two paths can deadlock, even if this particular run never does. The
// checker fires on the *potential*, which is what makes it far more
// sensitive than waiting for an actual deadlock under test load.
//
// Violations are routed through ReportViolation("lock-order", ...) with the
// full cycle path; the default handler aborts.
//
// Thread-safe. The per-thread held-lock stack lives in TLS, so only
// acquisitions nested on the same thread produce edges.
class LockOrderGraph {
 public:
  LockOrderGraph() = default;

  LockOrderGraph(const LockOrderGraph&) = delete;
  LockOrderGraph& operator=(const LockOrderGraph&) = delete;

  // Called by Mutex before blocking on the underlying mutex (a real deadlock
  // would otherwise suppress the report). Records edges from every lock
  // class this thread already holds to `name`, reporting a violation if any
  // such edge closes a cycle, then pushes `name` on the thread's held stack.
  void OnAcquire(const std::string& name);

  // Pops the most recent matching entry from the thread's held stack.
  void OnRelease(const std::string& name);

  // Number of distinct ordering edges observed so far.
  size_t EdgeCount() const;

  // True if the graph has recorded edge from -> to.
  bool HasEdge(const std::string& from, const std::string& to) const;

  // Drops all recorded edges (not the TLS held stacks of live guards).
  void Clear();

  // The process-wide graph used by production mutexes.
  static LockOrderGraph& Global();

  // &Global() when the build has invariant checks enabled, else nullptr.
  // Mutex's default constructor argument, so release builds skip all
  // tracking at the cost of a single null check per lock operation.
  static LockOrderGraph* GlobalIfEnabled() {
#if MTDB_INVARIANT_CHECKS_ENABLED
    return &Global();
#else
    return nullptr;
#endif
  }

 private:
  // Returns the cycle path to -> ... -> from if `from` is reachable from
  // `to`, i.e. adding from -> to would close a cycle. Requires mu_ held.
  std::vector<std::string> FindPath(const std::string& from,
                                    const std::string& to) const;

  // The checker's own lock sits below every instrumented mutex and must not
  // recurse into the instrumentation. mtdblint: allow(raw-mutex)
  mutable std::mutex mu_;
  // Keyed by lock-class name, not tenant: bounded by the number of
  // distinct mutex declarations in the code. mtdblint: allow(tenant-map)
  std::map<std::string, std::set<std::string>> edges_;
};

// A std::mutex instrumented with lock-order tracking and annotated as a
// thread-safety capability. Satisfies the C++ Lockable requirements, so it
// composes with std::lock_guard and std::unique_lock in generic code (the
// platform idiom is Guard / UniqueLock below, which carry the scoped
// annotations).
//
// The name identifies the lock *class* (see LockOrderGraph); by convention
// "<area>/<Class>::<member>", e.g. "storage/LockManager::mu". With the
// default graph argument, tracking is active only in builds where
// MTDB_INVARIANT_CHECKS_ENABLED is on; passing an explicit graph (tests)
// always tracks, and an explicit nullptr opts a lock class out — reserved
// for classes whose instances are legitimately acquired pairwise on one
// thread (e.g. Histogram::Merge), which the class-granular recursion check
// would misreport.
class MTDB_CAPABILITY("mutex") Mutex {
 public:
  explicit Mutex(const char* name,
                 LockOrderGraph* graph = LockOrderGraph::GlobalIfEnabled())
      : name_(name), graph_(graph) {}

  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() MTDB_ACQUIRE() {
    if (graph_ != nullptr) graph_->OnAcquire(name_);
    mu_.lock();
  }

  bool try_lock() MTDB_TRY_ACQUIRE(true) {
    // Check-before-acquire like lock(): a try_lock that *would* have
    // inverted the order is just as much a latent deadlock when the lock
    // happens to be contended.
    if (graph_ != nullptr) graph_->OnAcquire(name_);
    if (mu_.try_lock()) return true;
    if (graph_ != nullptr) graph_->OnRelease(name_);
    return false;
  }

  void unlock() MTDB_RELEASE() {
    mu_.unlock();
    if (graph_ != nullptr) graph_->OnRelease(name_);
  }

  const char* name() const { return name_; }

 private:
  std::mutex mu_;  // the wrapped implementation. mtdblint: allow(raw-mutex)
  const char* name_;
  LockOrderGraph* graph_;
};

// RAII scope guard over a Mutex (the annotated analogue of std::lock_guard).
class MTDB_SCOPED_CAPABILITY Guard {
 public:
  explicit Guard(Mutex& mu) MTDB_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~Guard() MTDB_RELEASE() { mu_.unlock(); }

  Guard(const Guard&) = delete;
  Guard& operator=(const Guard&) = delete;

 private:
  Mutex& mu_;
};

// RAII lock that can be temporarily released — the annotated analogue of
// std::unique_lock, shaped for condition-variable waits: construct it,
// test the predicate in a while loop around CondVar::Wait, destroy it.
// Ownership is tracked, so callers may unlock()/lock() manually (e.g. to
// drop the lock across an RPC) and the destructor releases only if held.
class MTDB_SCOPED_CAPABILITY UniqueLock {
 public:
  explicit UniqueLock(Mutex& mu) MTDB_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~UniqueLock() MTDB_RELEASE() {
    if (owns_) mu_.unlock();
  }

  UniqueLock(const UniqueLock&) = delete;
  UniqueLock& operator=(const UniqueLock&) = delete;

  // BasicLockable, used by CondVar's std::condition_variable_any and by
  // callers that release the lock around blocking work.
  void lock() MTDB_ACQUIRE() {
    mu_.lock();
    owns_ = true;
  }
  void unlock() MTDB_RELEASE() {
    owns_ = false;
    mu_.unlock();
  }

 private:
  Mutex& mu_;
  bool owns_ = true;
};

// Acquires two mutexes of the same class deadlock-free (std::lock's
// try-and-back-off), e.g. Histogram::Merge locking *this and other. The two
// must be distinct objects.
class MTDB_SCOPED_CAPABILITY DualGuard {
 public:
  DualGuard(Mutex& a, Mutex& b) MTDB_ACQUIRE(a, b) : a_(a), b_(b) {
    std::lock(a_, b_);
  }
  ~DualGuard() MTDB_RELEASE() {
    a_.unlock();
    b_.unlock();
  }

  DualGuard(const DualGuard&) = delete;
  DualGuard& operator=(const DualGuard&) = delete;

 private:
  Mutex& a_;
  Mutex& b_;
};

// Condition variable paired with Mutex/UniqueLock. Deliberately predicate-
// free: the thread-safety analysis cannot see into a predicate lambda (it
// would warn on every guarded member the lambda reads), so waits are written
// as explicit loops in the caller, where the analysis can see the lock:
//
//   UniqueLock lock(mu_);
//   while (!ready_) cv_.Wait(lock);
class CondVar {
 public:
  CondVar() = default;

  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  // All waits release `lock` while blocked and reacquire before returning,
  // so the caller's capability set is unchanged (which is why these carry no
  // acquire/release annotations).
  void Wait(UniqueLock& lock) { cv_.wait(lock); }

  template <typename Clock, typename Duration>
  std::cv_status WaitUntil(
      UniqueLock& lock, const std::chrono::time_point<Clock, Duration>& tp) {
    return cv_.wait_until(lock, tp);
  }

  template <typename Rep, typename Period>
  std::cv_status WaitFor(UniqueLock& lock,
                         const std::chrono::duration<Rep, Period>& d) {
    return cv_.wait_for(lock, d);
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  // condition_variable_any because it waits on UniqueLock (BasicLockable),
  // not std::unique_lock<std::mutex>. mtdblint: allow(raw-mutex)
  std::condition_variable_any cv_;
};

// std::shared_mutex instrumented and annotated like Mutex. Shared and
// exclusive acquisitions both feed the lock-order graph (a reader holding A
// while taking B still deadlocks against a writer taking B then A).
class MTDB_CAPABILITY("shared_mutex") SharedMutex {
 public:
  explicit SharedMutex(
      const char* name,
      LockOrderGraph* graph = LockOrderGraph::GlobalIfEnabled())
      : name_(name), graph_(graph) {}

  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void lock() MTDB_ACQUIRE() {
    if (graph_ != nullptr) graph_->OnAcquire(name_);
    mu_.lock();
  }
  void unlock() MTDB_RELEASE() {
    mu_.unlock();
    if (graph_ != nullptr) graph_->OnRelease(name_);
  }
  void lock_shared() MTDB_ACQUIRE_SHARED() {
    if (graph_ != nullptr) graph_->OnAcquire(name_);
    mu_.lock_shared();
  }
  void unlock_shared() MTDB_RELEASE_SHARED() {
    mu_.unlock_shared();
    if (graph_ != nullptr) graph_->OnRelease(name_);
  }

  const char* name() const { return name_; }

 private:
  std::shared_mutex mu_;  // wrapped implementation. mtdblint: allow(raw-mutex)
  const char* name_;
  LockOrderGraph* graph_;
};

// Exclusive (writer) RAII guard over a SharedMutex.
class MTDB_SCOPED_CAPABILITY WriterGuard {
 public:
  explicit WriterGuard(SharedMutex& mu) MTDB_ACQUIRE(mu) : mu_(mu) {
    mu_.lock();
  }
  ~WriterGuard() MTDB_RELEASE() { mu_.unlock(); }

  WriterGuard(const WriterGuard&) = delete;
  WriterGuard& operator=(const WriterGuard&) = delete;

 private:
  SharedMutex& mu_;
};

// Shared (reader) RAII guard over a SharedMutex.
class MTDB_SCOPED_CAPABILITY ReaderGuard {
 public:
  explicit ReaderGuard(SharedMutex& mu) MTDB_ACQUIRE_SHARED(mu) : mu_(mu) {
    mu_.lock_shared();
  }
  ~ReaderGuard() MTDB_RELEASE() { mu_.unlock_shared(); }

  ReaderGuard(const ReaderGuard&) = delete;
  ReaderGuard& operator=(const ReaderGuard&) = delete;

 private:
  SharedMutex& mu_;
};

}  // namespace platform
}  // namespace mtdb

#endif  // MTDB_PLATFORM_MUTEX_H_
