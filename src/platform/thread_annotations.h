#ifndef MTDB_PLATFORM_THREAD_ANNOTATIONS_H_
#define MTDB_PLATFORM_THREAD_ANNOTATIONS_H_

// Clang Thread Safety Analysis attribute macros (the GUARDED_BY / REQUIRES /
// ACQUIRE family), spelled with an MTDB_ prefix so they cannot collide with
// other libraries' unprefixed macros.
//
// Under Clang these expand to the __attribute__((...)) forms consumed by
// -Wthread-safety, turning the locking discipline documented in headers into
// compile-time proofs: every access to a MTDB_GUARDED_BY member is checked
// against the capabilities the compiler can see held on that path. Under GCC
// (which has no thread-safety analysis) they expand to nothing, so annotated
// code builds identically everywhere.
//
// The CMake option MTDB_THREAD_SAFETY=ON adds -Werror=thread-safety (Clang
// only) and is gated in CI; see DESIGN.md §12 "Static analysis & proofs".
//
// Annotation cheat sheet (all names below take the MTDB_ prefix):
//   CAPABILITY("mutex")   class is a lockable capability (platform::Mutex)
//   SCOPED_CAPABILITY     RAII class that acquires in ctor, releases in dtor
//   GUARDED_BY(mu)        member may only be touched while mu is held
//   PT_GUARDED_BY(mu)     pointee (not the pointer) is guarded by mu
//   REQUIRES(mu)          caller must hold mu (private helper contract)
//   REQUIRES_SHARED(mu)   caller must hold mu at least shared
//   ACQUIRE(mu)/RELEASE(mu)        function acquires / releases mu
//   ACQUIRE_SHARED/RELEASE_SHARED  shared (reader) flavors
//   TRY_ACQUIRE(true, mu) returns true iff mu was acquired
//   EXCLUDES(mu)          caller must NOT hold mu (self-deadlock proof)
//   NO_THREAD_SAFETY_ANALYSIS      opt a function out (justify in a comment)

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(guarded_by)
#define MTDB_THREAD_ANNOTATION_(x) __attribute__((x))
#endif
#endif
#ifndef MTDB_THREAD_ANNOTATION_
#define MTDB_THREAD_ANNOTATION_(x)  // not Clang: annotations compile away
#endif

#define MTDB_CAPABILITY(x) MTDB_THREAD_ANNOTATION_(capability(x))

#define MTDB_SCOPED_CAPABILITY MTDB_THREAD_ANNOTATION_(scoped_lockable)

#define MTDB_GUARDED_BY(x) MTDB_THREAD_ANNOTATION_(guarded_by(x))

#define MTDB_PT_GUARDED_BY(x) MTDB_THREAD_ANNOTATION_(pt_guarded_by(x))

#define MTDB_ACQUIRED_BEFORE(...) \
  MTDB_THREAD_ANNOTATION_(acquired_before(__VA_ARGS__))

#define MTDB_ACQUIRED_AFTER(...) \
  MTDB_THREAD_ANNOTATION_(acquired_after(__VA_ARGS__))

#define MTDB_REQUIRES(...) \
  MTDB_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))

#define MTDB_REQUIRES_SHARED(...) \
  MTDB_THREAD_ANNOTATION_(requires_shared_capability(__VA_ARGS__))

#define MTDB_ACQUIRE(...) \
  MTDB_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))

#define MTDB_ACQUIRE_SHARED(...) \
  MTDB_THREAD_ANNOTATION_(acquire_shared_capability(__VA_ARGS__))

#define MTDB_RELEASE(...) \
  MTDB_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))

#define MTDB_RELEASE_SHARED(...) \
  MTDB_THREAD_ANNOTATION_(release_shared_capability(__VA_ARGS__))

#define MTDB_RELEASE_GENERIC(...) \
  MTDB_THREAD_ANNOTATION_(release_generic_capability(__VA_ARGS__))

#define MTDB_TRY_ACQUIRE(...) \
  MTDB_THREAD_ANNOTATION_(try_acquire_capability(__VA_ARGS__))

#define MTDB_TRY_ACQUIRE_SHARED(...) \
  MTDB_THREAD_ANNOTATION_(try_acquire_shared_capability(__VA_ARGS__))

#define MTDB_EXCLUDES(...) MTDB_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))

#define MTDB_ASSERT_CAPABILITY(x) \
  MTDB_THREAD_ANNOTATION_(assert_capability(x))

#define MTDB_RETURN_CAPABILITY(x) MTDB_THREAD_ANNOTATION_(lock_returned(x))

#define MTDB_NO_THREAD_SAFETY_ANALYSIS \
  MTDB_THREAD_ANNOTATION_(no_thread_safety_analysis)

#endif  // MTDB_PLATFORM_THREAD_ANNOTATIONS_H_
