#ifndef MTDB_PLATFORM_COLO_H_
#define MTDB_PLATFORM_COLO_H_

#include <atomic>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/cluster/cluster_controller.h"
#include "src/platform/mutex.h"

namespace mtdb::platform {

// A geographic coordinate, used for proximity-based connection routing.
struct GeoPoint {
  double latitude = 0;
  double longitude = 0;
};

// Great-circle distance (haversine), kilometres.
double GeoDistanceKm(const GeoPoint& a, const GeoPoint& b);

struct ColoOptions {
  std::string name = "colo";
  GeoPoint location;
  // Machines per newly created cluster.
  int machines_per_cluster = 4;
  // Machines initially in the colo's free pool.
  int free_pool_machines = 4;
  ClusterControllerOptions cluster_options;
  MachineOptions machine_options;
};

// One colo (Section 2): a set of machine clusters coordinated by a colo
// controller, which routes connections to the cluster hosting each database
// and manages a pool of free machines that it grants to clusters as their
// workload grows. The colo controller holds no connection state, so its
// fault tolerance is a light-weight hot standby (modeled by Fail/Recover
// flipping availability without losing routing state).
class Colo {
 public:
  explicit Colo(ColoOptions options);

  Colo(const Colo&) = delete;
  Colo& operator=(const Colo&) = delete;

  const std::string& name() const { return options_.name; }
  const GeoPoint& location() const { return options_.location; }

  // --- Cluster management (colo controller) ---
  int AddCluster();
  ClusterController* cluster(int id) const;
  size_t cluster_count() const;

  // Places a database on the least-loaded cluster (creating the first
  // cluster on demand), pulling machines from the free pool into the cluster
  // when it cannot satisfy the replica count.
  Status CreateDatabase(const std::string& db_name, int num_replicas);
  // The cluster hosting the database.
  Result<ClusterController*> ClusterFor(const std::string& db_name) const;
  bool HostsDatabase(const std::string& db_name) const;
  std::vector<std::string> DatabaseNames() const;

  // Routes a client connection to the hosting cluster's controller.
  Result<std::unique_ptr<Connection>> Connect(const std::string& db_name);

  // --- Free machine pool ---
  int free_machines() const { return free_pool_.load(); }
  // Moves one free-pool machine into the given cluster. Fails when the pool
  // is empty.
  Status GrantMachine(int cluster_id);

  // --- Disaster switch ---
  bool failed() const { return failed_.load(); }
  void Fail() { failed_.store(true); }
  void Recover() { failed_.store(false); }

 private:
  ColoOptions options_;
  mutable platform::Mutex mu_{"platform/Colo::mu"};
  std::vector<std::unique_ptr<ClusterController>> clusters_
      MTDB_GUARDED_BY(mu_);
  // One int per database — the colo-level placement fact itself, which has
  // no smaller durable form (the paper's Figure 1 routing tier).
  // mtdblint: allow(tenant-map)
  std::map<std::string, int> db_to_cluster_ MTDB_GUARDED_BY(mu_);
  std::atomic<int> free_pool_;
  std::atomic<bool> failed_{false};
};

}  // namespace mtdb::platform

#endif  // MTDB_PLATFORM_COLO_H_
