#include "src/platform/mutex.h"

#include <algorithm>
#include <deque>
#include <sstream>
#include <utility>

namespace mtdb {
namespace platform {

namespace {

struct HeldEntry {
  const LockOrderGraph* graph;
  std::string name;
};

// The per-thread stack of instrumented locks currently held, across all
// graphs (tests run private graphs alongside the global one).
std::vector<HeldEntry>& TlsHeldStack() {
  static thread_local std::vector<HeldEntry> held;
  return held;
}

}  // namespace

LockOrderGraph& LockOrderGraph::Global() {
  // Intentionally leaked: worker threads (strands) may still be locking
  // instrumented mutexes during static destruction at process exit.
  static LockOrderGraph* graph = new LockOrderGraph();
  return *graph;
}

std::vector<std::string> LockOrderGraph::FindPath(
    const std::string& from, const std::string& to) const {
  // BFS from `from` to `to` over recorded edges; returns the node path
  // (inclusive of both endpoints), or empty when unreachable.
  std::map<std::string, std::string> parent;  // node -> predecessor
  std::deque<std::string> frontier = {from};
  parent[from] = from;
  while (!frontier.empty()) {
    std::string node = frontier.front();
    frontier.pop_front();
    auto it = edges_.find(node);
    if (it == edges_.end()) continue;
    for (const std::string& next : it->second) {
      if (parent.count(next) > 0) continue;
      parent[next] = node;
      if (next == to) {
        std::vector<std::string> path = {next};
        for (std::string cur = node; cur != from; cur = parent[cur]) {
          path.push_back(cur);
        }
        path.push_back(from);
        std::reverse(path.begin(), path.end());
        return path;
      }
      frontier.push_back(next);
    }
  }
  return {};
}

void LockOrderGraph::OnAcquire(const std::string& name) {
  std::vector<HeldEntry>& held = TlsHeldStack();
  {
    std::lock_guard<std::mutex> lock(mu_);  // mtdblint: allow(raw-mutex)
    for (const HeldEntry& entry : held) {
      if (entry.graph != this) continue;
      if (entry.name == name) {
        analysis::ReportViolation(
            "lock-order",
            "recursive acquisition of lock class " + name +
                " on one thread (self-deadlock if the two "
                "acquisitions ever hit the same instance)");
        continue;
      }
      std::set<std::string>& out = edges_[entry.name];
      if (out.count(name) > 0) continue;  // known-safe ordering
      // Adding entry.name -> name closes a cycle iff name already reaches
      // entry.name.
      std::vector<std::string> path = FindPath(name, entry.name);
      if (!path.empty()) {
        std::ostringstream cycle;
        cycle << entry.name;
        for (const std::string& node : path) cycle << " -> " << node;
        analysis::ReportViolation(
            "lock-order", "lock-order inversion: acquiring " + name +
                              " while holding " + entry.name +
                              " closes the cycle " + cycle.str());
      }
      // Record the edge either way so each inverted pair reports once.
      out.insert(name);
    }
  }
  held.push_back(HeldEntry{this, name});
}

void LockOrderGraph::OnRelease(const std::string& name) {
  std::vector<HeldEntry>& held = TlsHeldStack();
  for (auto it = held.rbegin(); it != held.rend(); ++it) {
    if (it->graph == this && it->name == name) {
      held.erase(std::next(it).base());
      return;
    }
  }
  // Unlock of a lock this thread never recorded: the underlying std::mutex
  // misuse is UB anyway; nothing sane to report here.
}

size_t LockOrderGraph::EdgeCount() const {
  std::lock_guard<std::mutex> lock(mu_);  // mtdblint: allow(raw-mutex)
  size_t count = 0;
  for (const auto& [node, out] : edges_) count += out.size();
  return count;
}

bool LockOrderGraph::HasEdge(const std::string& from,
                             const std::string& to) const {
  std::lock_guard<std::mutex> lock(mu_);  // mtdblint: allow(raw-mutex)
  auto it = edges_.find(from);
  return it != edges_.end() && it->second.count(to) > 0;
}

void LockOrderGraph::Clear() {
  std::lock_guard<std::mutex> lock(mu_);  // mtdblint: allow(raw-mutex)
  edges_.clear();
}

}  // namespace platform
}  // namespace mtdb
