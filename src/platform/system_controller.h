#ifndef MTDB_PLATFORM_SYSTEM_CONTROLLER_H_
#define MTDB_PLATFORM_SYSTEM_CONTROLLER_H_

#include <deque>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/platform/colo.h"
#include "src/platform/mutex.h"

namespace mtdb::platform {

class SystemController;

// A platform-level client connection. Wraps the hosting cluster's
// Connection and, for databases with a disaster-recovery colo, captures
// committed write statements so the system's asynchronous replicator can
// ship them to the remote colo (Section 2: strong guarantees inside a colo
// via synchronous replication, weaker guarantees across colos via
// asynchronous replication).
class PlatformConnection {
 public:
  Status Begin();
  Result<sql::QueryResult> Execute(const std::string& sql,
                                   const std::vector<Value>& params = {});
  Status Commit();
  Status Abort();
  bool in_transaction() const { return inner_->in_transaction(); }
  const std::string& colo_name() const { return colo_name_; }

 private:
  friend class SystemController;
  PlatformConnection(SystemController* system, std::string db_name,
                     std::string colo_name,
                     std::unique_ptr<Connection> inner, bool capture_writes);

  struct BufferedWrite {
    std::string sql;
    std::vector<Value> params;
  };

  SystemController* system_;
  std::string db_name_;
  std::string colo_name_;
  std::unique_ptr<Connection> inner_;
  bool capture_writes_;
  std::vector<BufferedWrite> txn_writes_;
};

struct SystemOptions {
  // Simulated shipping delay for cross-colo replication.
  int64_t replication_lag_ms = 20;
  int default_replicas_per_colo = 2;
};

// The top of the Section 2 hierarchy: a fault-tolerant system controller
// spanning geographically distributed colos. Routes connection requests to
// the nearest alive colo hosting the database (primary by default), creates
// databases with a primary and an optional disaster-recovery colo, and runs
// the asynchronous cross-colo replication shipper.
class SystemController {
 public:
  explicit SystemController(SystemOptions options = {});
  ~SystemController();

  SystemController(const SystemController&) = delete;
  SystemController& operator=(const SystemController&) = delete;

  int AddColo(ColoOptions options);
  Colo* colo(int id) const;
  Colo* colo(const std::string& name) const;
  size_t colo_count() const;

  // Creates the database in the colo nearest to the owner, plus an
  // asynchronously replicated copy in the next-nearest colo when available.
  Status CreateDatabase(const std::string& db_name, GeoPoint owner_location,
                        int replicas_per_colo = 0);
  // Name of the primary / disaster-recovery colo for a database.
  Result<std::string> PrimaryColoOf(const std::string& db_name) const;
  Result<std::string> SecondaryColoOf(const std::string& db_name) const;

  // Routes to the primary colo; if it is down, fails over to the secondary
  // (weaker guarantee: writes shipped but not yet applied are lost).
  Result<std::unique_ptr<PlatformConnection>> Connect(
      const std::string& db_name, GeoPoint client_location);

  // Promotes the secondary colo to primary (disaster recovery).
  Status FailoverDatabase(const std::string& db_name);

  // Blocks until the replication queue is empty (tests/benches).
  void DrainReplication();
  int64_t shipped_transactions() const { return shipped_.load(); }

 private:
  friend class PlatformConnection;

  struct DbRoute {
    std::string primary_colo;
    std::string secondary_colo;  // empty if none
  };

  struct ShipTask {
    std::string db_name;
    std::string target_colo;
    std::vector<PlatformConnection::BufferedWrite> writes;
  };

  // Called by PlatformConnection on commit.
  void EnqueueShipment(const std::string& db_name,
                       std::vector<PlatformConnection::BufferedWrite> writes);
  void ShipperLoop();

  SystemOptions options_;
  mutable platform::Mutex mu_{"platform/SystemController::mu"};
  std::vector<std::unique_ptr<Colo>> colos_ MTDB_GUARDED_BY(mu_);
  // Simulation-fixture routing table, not production metadata: lives only
  // as long as the test scenario. mtdblint: allow(tenant-map)
  std::map<std::string, DbRoute> routes_ MTDB_GUARDED_BY(mu_);

  platform::Mutex queue_mu_{"platform/SystemController::queue_mu"};
  platform::CondVar queue_cv_;
  std::deque<ShipTask> queue_ MTDB_GUARDED_BY(queue_mu_);
  bool stop_ MTDB_GUARDED_BY(queue_mu_) = false;
  int64_t in_flight_ MTDB_GUARDED_BY(queue_mu_) = 0;
  std::atomic<int64_t> shipped_{0};
  std::thread shipper_;
};

}  // namespace mtdb::platform

#endif  // MTDB_PLATFORM_SYSTEM_CONTROLLER_H_
