#include "src/sla/profiler.h"

#include "src/common/clock.h"

namespace mtdb::sla {

ProfileObservation ResourceProfiler::Observe(
    ClusterController* controller, const std::string& db_name,
    const std::function<std::pair<bool, bool>(Connection*)>& run_txn,
    int64_t duration_ms) {
  ProfileObservation observation;
  auto conn = controller->Connect(db_name);
  Stopwatch watch;
  int64_t committed = 0;
  int64_t writes = 0;
  while (watch.ElapsedMicros() < duration_ms * 1000) {
    auto [ok, was_write] = run_txn(conn.get());
    if (ok) {
      ++committed;
      if (was_write) ++writes;
    }
  }
  double seconds = watch.ElapsedSeconds();
  observation.measured_tps = seconds > 0 ? committed / seconds : 0;
  observation.write_mix =
      committed > 0 ? static_cast<double>(writes) / committed : 0;

  // Footprint: ask any alive replica.
  for (int id : controller->ReplicasOf(db_name)) {
    Machine* m = controller->machine(id);
    if (m == nullptr || m->failed()) continue;
    Database* db = m->engine()->GetDatabase(db_name);
    if (db != nullptr) {
      observation.size_mb =
          static_cast<double>(db->ApproxByteSize()) / (1024.0 * 1024.0);
      break;
    }
  }
  return observation;
}

ResourceVector ResourceProfiler::RequirementFor(
    const ProfileObservation& observation) const {
  return EstimateRequirement(observation.size_mb, observation.measured_tps,
                             model_);
}

}  // namespace mtdb::sla
