#ifndef MTDB_SLA_SLA_H_
#define MTDB_SLA_SLA_H_

#include <string>

#include "src/common/resource.h"
#include "src/qos/qos.h"

namespace mtdb::sla {

// A database SLA, per Section 4.1 of the paper:
//  1. a minimum throughput (transactions per second) over a period T, and
//  2. a maximum fraction of proactively rejected transactions over T
//     (rejections caused by recovery/migration copying, not by inherent
//     application behaviour such as deadlocks).
struct Sla {
  double min_throughput_tps = 1.0;
  double max_rejected_fraction = 0.01;
  double period_seconds = 24 * 3600;
};

// Inputs to the availability constraint for one database.
struct AvailabilityParams {
  // Expected machine failures affecting this database per period T.
  double machine_failure_rate = 0.0;
  // Replica moves per period T for maintenance/reorganization.
  double reallocation_rate = 0.0;
  // Seconds needed to copy the database during recovery.
  double recovery_time_seconds = 0.0;
  // Fraction of update transactions in the workload.
  double write_mix = 0.0;
};

// The paper's availability inequality, left-hand side:
//   (failure_rate + reallocation_rate) * (recovery_time / T) * write_mix
// This is the expected fraction of transactions proactively rejected due to
// copy windows.
double ExpectedRejectedFraction(const AvailabilityParams& params,
                                double period_seconds);

// True when the expected rejected fraction stays below the SLA bound.
bool SatisfiesAvailability(const Sla& sla, const AvailabilityParams& params);

// Coefficients mapping an observed (size, throughput) profile to a resource
// requirement vector r[j]. Defaults are the calibration used throughout the
// benchmarks; DESIGN.md documents the model.
struct ProfileModel {
  double cpu_per_tps = 12.0;       // cpu units consumed per sustained tps
  double cpu_base = 1.0;
  double memory_per_mb = 0.25;     // resident hot set fraction
  double memory_base_mb = 24.0;
  double disk_per_mb = 1.0;        // on-disk footprint per data MB
  double io_per_tps = 4.0;         // disk ops per transaction
};

// Analytic requirement estimate from a database's size and throughput SLA.
ResourceVector EstimateRequirement(double size_mb, double throughput_tps,
                                   const ProfileModel& model = ProfileModel());

// Admission quota derived from an SLA: the tenant may burst above its
// guaranteed minimum (headroom > 1 leaves room for organic growth before the
// load-driven refresh catches up), and its WDRR weight scales with the
// guaranteed throughput so scheduler shares line up with what was sold.
//   rate  = min_throughput_tps * headroom
//   burst = max(1, rate / 2)     (half a second of line-rate arrivals)
//   weight = clamp(round(min_throughput_tps), 1, 1000)
qos::QuotaSpec QuotaForSla(const Sla& sla, double headroom = 1.25);

}  // namespace mtdb::sla

#endif  // MTDB_SLA_SLA_H_
