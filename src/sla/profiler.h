#ifndef MTDB_SLA_PROFILER_H_
#define MTDB_SLA_PROFILER_H_

#include <functional>
#include <string>

#include "src/cluster/cluster_controller.h"
#include "src/sla/sla.h"

namespace mtdb::sla {

// What the observation period measures for a new database.
struct ProfileObservation {
  double measured_tps = 0;
  double size_mb = 0;
  double write_mix = 0;
};

// Section 4.2: "When a new database is created, it is first allocated to a
// free machine in the cluster to observe the resource requirements needed to
// maintain its SLA." This profiler drives a caller-supplied transaction
// function against the database for an observation window and reports the
// measured throughput, footprint, and write mix, which map to a resource
// requirement r[j] via the ProfileModel.
class ResourceProfiler {
 public:
  explicit ResourceProfiler(ProfileModel model = ProfileModel())
      : model_(model) {}

  // Runs `run_txn` in a loop on a fresh connection for `duration_ms`
  // milliseconds. `run_txn` returns (committed, was_write); aborted
  // transactions count toward neither.
  ProfileObservation Observe(
      ClusterController* controller, const std::string& db_name,
      const std::function<std::pair<bool, bool>(Connection*)>& run_txn,
      int64_t duration_ms);

  // Maps an observation to a resource requirement vector.
  ResourceVector RequirementFor(const ProfileObservation& observation) const;

  const ProfileModel& model() const { return model_; }

 private:
  ProfileModel model_;
};

}  // namespace mtdb::sla

#endif  // MTDB_SLA_PROFILER_H_
