#include "src/sla/placement.h"

#include <algorithm>
#include <cmath>

namespace mtdb::sla {

Result<std::vector<int>> FirstFitPlacer::AddDatabase(
    const DatabaseDemand& demand) {
  if (!demand.requirement.FitsIn(capacity_)) {
    return Status::ResourceExhausted(
        "database " + demand.name +
        " exceeds single-machine capacity (the platform requires every "
        "database to fit in one machine)");
  }
  if (placement_.assignment.count(demand.name) > 0) {
    return Status::AlreadyExists("database " + demand.name +
                                 " already placed");
  }
  std::vector<int> chosen;
  for (int r = 0; r < demand.replicas; ++r) {
    int target = -1;
    for (size_t m = 0; m < loads_.size(); ++m) {
      if (std::count(chosen.begin(), chosen.end(), static_cast<int>(m)) > 0) {
        continue;  // replicas of one database on distinct machines
      }
      ResourceVector with = loads_[m] + demand.requirement;
      if (with.FitsIn(capacity_)) {
        target = static_cast<int>(m);
        break;  // First-Fit: lowest-index machine with room
      }
    }
    if (target < 0) {
      // Algorithm 2 line 13: open a new machine from the free pool.
      loads_.emplace_back();
      target = static_cast<int>(loads_.size()) - 1;
    }
    loads_[target] += demand.requirement;
    chosen.push_back(target);
  }
  placement_.assignment[demand.name] = chosen;
  placement_.machines_used = static_cast<int>(loads_.size());
  return chosen;
}

namespace {

// DFS state for branch-and-bound bin packing.
struct Search {
  const std::vector<DatabaseDemand>* demands;
  ResourceVector capacity;
  int best;  // best (lowest) machine count found
  int lower_bound = 1;  // static volume bound; reaching it ends the search
  int64_t nodes_left;

  // Replica-level flattened items: demand index per replica.
  std::vector<int> items;
  std::vector<ResourceVector> loads;
  // Which machine hosts a replica of demand d in the current partial
  // assignment (for the distinctness constraint).
  std::vector<std::vector<int>> machines_of_demand;

  void Dfs(size_t item_index) {
    if (nodes_left-- <= 0 || best <= lower_bound) return;
    int used = static_cast<int>(loads.size());
    if (used >= best) return;  // cannot improve
    if (item_index == items.size()) {
      best = used;
      return;
    }
    int demand_index = items[item_index];
    const DatabaseDemand& demand = (*demands)[demand_index];
    const std::vector<int>& taken = machines_of_demand[demand_index];

    for (size_t m = 0; m < loads.size(); ++m) {
      if (std::count(taken.begin(), taken.end(), static_cast<int>(m)) > 0) {
        continue;
      }
      ResourceVector with = loads[m] + demand.requirement;
      if (!with.FitsIn(capacity)) continue;
      loads[m] = with;
      machines_of_demand[demand_index].push_back(static_cast<int>(m));
      Dfs(item_index + 1);
      machines_of_demand[demand_index].pop_back();
      loads[m] -= demand.requirement;
    }
    // Open one new machine (opening more than one is symmetric).
    if (used + 1 < best) {
      loads.push_back(demand.requirement);
      machines_of_demand[demand_index].push_back(used);
      Dfs(item_index + 1);
      machines_of_demand[demand_index].pop_back();
      loads.pop_back();
    }
  }
};

}  // namespace

int OptimalMachineCount(const std::vector<DatabaseDemand>& demands,
                        const ResourceVector& capacity,
                        int64_t node_budget) {
  // Upper bound from First-Fit-Decreasing to prune aggressively.
  std::vector<DatabaseDemand> sorted = demands;
  auto weight = [&capacity](const DatabaseDemand& d) {
    double w = 0;
    if (capacity.cpu > 0) w = std::max(w, d.requirement.cpu / capacity.cpu);
    if (capacity.memory_mb > 0) {
      w = std::max(w, d.requirement.memory_mb / capacity.memory_mb);
    }
    if (capacity.disk_mb > 0) {
      w = std::max(w, d.requirement.disk_mb / capacity.disk_mb);
    }
    if (capacity.disk_io > 0) {
      w = std::max(w, d.requirement.disk_io / capacity.disk_io);
    }
    return w;
  };
  std::sort(sorted.begin(), sorted.end(),
            [&weight](const DatabaseDemand& a, const DatabaseDemand& b) {
              return weight(a) > weight(b);
            });
  FirstFitPlacer ffd(capacity);
  for (const DatabaseDemand& demand : sorted) {
    if (!ffd.AddDatabase(demand).ok()) return -1;  // infeasible demand
  }
  int upper = ffd.machines_used();

  // Static volume lower bound: total demand per dimension / capacity.
  ResourceVector total;
  for (const DatabaseDemand& d : sorted) {
    for (int r = 0; r < d.replicas; ++r) total += d.requirement;
  }
  int lower_bound = 1;
  auto dim_bound = [&lower_bound](double demand, double cap) {
    if (cap > 0) {
      lower_bound = std::max(
          lower_bound, static_cast<int>(std::ceil(demand / cap - 1e-9)));
    }
  };
  dim_bound(total.cpu, capacity.cpu);
  dim_bound(total.memory_mb, capacity.memory_mb);
  dim_bound(total.disk_mb, capacity.disk_mb);
  dim_bound(total.disk_io, capacity.disk_io);
  for (const DatabaseDemand& d : sorted) {
    lower_bound = std::max(lower_bound, d.replicas);
  }
  if (upper <= lower_bound) return upper;

  Search search;
  search.demands = &sorted;
  search.capacity = capacity;
  search.best = upper;
  search.lower_bound = lower_bound;
  search.nodes_left = node_budget;
  for (size_t d = 0; d < sorted.size(); ++d) {
    for (int r = 0; r < sorted[d].replicas; ++r) {
      search.items.push_back(static_cast<int>(d));
    }
  }
  search.machines_of_demand.resize(sorted.size());
  search.Dfs(0);
  return search.best;
}

Status ValidatePlacement(const Placement& placement,
                         const std::vector<DatabaseDemand>& demands,
                         const ResourceVector& capacity) {
  std::vector<ResourceVector> loads(placement.machines_used);
  for (const DatabaseDemand& demand : demands) {
    auto it = placement.assignment.find(demand.name);
    if (it == placement.assignment.end()) {
      return Status::NotFound("database " + demand.name + " not placed");
    }
    const std::vector<int>& machines = it->second;
    if (static_cast<int>(machines.size()) != demand.replicas) {
      return Status::Internal("replica count mismatch for " + demand.name);
    }
    for (size_t i = 0; i < machines.size(); ++i) {
      for (size_t j = i + 1; j < machines.size(); ++j) {
        if (machines[i] == machines[j]) {
          return Status::Internal("replicas of " + demand.name +
                                  " share machine " +
                                  std::to_string(machines[i]));
        }
      }
      if (machines[i] < 0 || machines[i] >= placement.machines_used) {
        return Status::Internal("machine index out of range");
      }
      loads[machines[i]] += demand.requirement;
    }
  }
  for (size_t m = 0; m < loads.size(); ++m) {
    if (!loads[m].FitsIn(capacity)) {
      return Status::ResourceExhausted("machine " + std::to_string(m) +
                                       " over capacity: " +
                                       loads[m].ToString());
    }
  }
  return Status::OK();
}

}  // namespace mtdb::sla
