#include "src/sla/sla.h"

namespace mtdb::sla {

double ExpectedRejectedFraction(const AvailabilityParams& params,
                                double period_seconds) {
  if (period_seconds <= 0) return 0.0;
  return (params.machine_failure_rate + params.reallocation_rate) *
         (params.recovery_time_seconds / period_seconds) * params.write_mix;
}

bool SatisfiesAvailability(const Sla& sla, const AvailabilityParams& params) {
  return ExpectedRejectedFraction(params, sla.period_seconds) <
         sla.max_rejected_fraction;
}

ResourceVector EstimateRequirement(double size_mb, double throughput_tps,
                                   const ProfileModel& model) {
  return ResourceVector(
      model.cpu_base + model.cpu_per_tps * throughput_tps,
      model.memory_base_mb + model.memory_per_mb * size_mb,
      model.disk_per_mb * size_mb,
      model.io_per_tps * throughput_tps);
}

}  // namespace mtdb::sla
