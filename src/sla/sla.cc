#include "src/sla/sla.h"

#include <algorithm>
#include <cmath>

namespace mtdb::sla {

double ExpectedRejectedFraction(const AvailabilityParams& params,
                                double period_seconds) {
  if (period_seconds <= 0) return 0.0;
  return (params.machine_failure_rate + params.reallocation_rate) *
         (params.recovery_time_seconds / period_seconds) * params.write_mix;
}

bool SatisfiesAvailability(const Sla& sla, const AvailabilityParams& params) {
  return ExpectedRejectedFraction(params, sla.period_seconds) <
         sla.max_rejected_fraction;
}

ResourceVector EstimateRequirement(double size_mb, double throughput_tps,
                                   const ProfileModel& model) {
  return ResourceVector(
      model.cpu_base + model.cpu_per_tps * throughput_tps,
      model.memory_base_mb + model.memory_per_mb * size_mb,
      model.disk_per_mb * size_mb,
      model.io_per_tps * throughput_tps);
}

qos::QuotaSpec QuotaForSla(const Sla& sla, double headroom) {
  qos::QuotaSpec spec;
  double min_tps = std::max(sla.min_throughput_tps, 0.0);
  spec.rate_tps = min_tps * std::max(headroom, 1.0);
  spec.burst = std::max(1.0, spec.rate_tps / 2.0);
  spec.weight = static_cast<int>(
      std::clamp<long>(std::lround(min_tps), 1L, 1000L));
  return spec;
}

}  // namespace mtdb::sla
