#ifndef MTDB_SLA_PLACEMENT_H_
#define MTDB_SLA_PLACEMENT_H_

#include <map>
#include <string>
#include <vector>

#include "src/common/result.h"
#include "src/common/resource.h"
#include "src/sla/sla.h"

namespace mtdb::sla {

// One database's placement demand: the resource requirement of a single
// replica (r[j] in the paper) and the number of replicas, which must land on
// distinct machines.
struct DatabaseDemand {
  std::string name;
  ResourceVector requirement;
  int replicas = 1;
};

// A placement of replicas onto machines (machine indexes are dense ids).
struct Placement {
  // db name -> machine index per replica.
  std::map<std::string, std::vector<int>> assignment;
  int machines_used = 0;
};

// Online First-Fit placement — Algorithm 2 of the paper. Databases arrive
// one at a time; existing placements are never revisited. Each replica goes
// to the first (lowest-index) machine with room that does not already hold a
// replica of the same database; replicas that fit nowhere open new machines.
class FirstFitPlacer {
 public:
  explicit FirstFitPlacer(ResourceVector machine_capacity)
      : capacity_(machine_capacity) {}

  // Places all replicas of `demand`; grows the machine pool as needed.
  // Fails only if a single replica exceeds the machine capacity outright.
  Result<std::vector<int>> AddDatabase(const DatabaseDemand& demand);

  int machines_used() const { return static_cast<int>(loads_.size()); }
  const std::vector<ResourceVector>& loads() const { return loads_; }
  const Placement& placement() const { return placement_; }

 private:
  ResourceVector capacity_;
  std::vector<ResourceVector> loads_;
  Placement placement_;
};

// Exact minimum machine count via branch-and-bound over replica->bin
// assignments (multi-dimensional vector bin packing with the distinct-machine
// constraint; the paper computed this "exhaustively offline" for Table 2).
// `node_budget` caps the search; if exhausted, the best bound found so far is
// returned (still an upper bound that equals the optimum on the benchmark
// sizes used here).
int OptimalMachineCount(const std::vector<DatabaseDemand>& demands,
                        const ResourceVector& capacity,
                        int64_t node_budget = 50'000'000);

// Validates that a placement respects capacities and replica distinctness.
Status ValidatePlacement(const Placement& placement,
                         const std::vector<DatabaseDemand>& demands,
                         const ResourceVector& capacity);

}  // namespace mtdb::sla

#endif  // MTDB_SLA_PLACEMENT_H_
