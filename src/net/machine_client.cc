#include "src/net/machine_client.h"

#include <future>
#include <utility>

#include "src/common/clock.h"
#include "src/common/logging.h"
#include "src/net/codec.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"

namespace mtdb::net {

namespace {

// Client-side per-RPC-type metrics, resolved once per process so the reply
// path does no registry lookups.
struct ClientRpcMetrics {
  obs::Counter* calls = nullptr;
  obs::Counter* timeouts = nullptr;
  Histogram* latency_us = nullptr;
};

const ClientRpcMetrics& MetricsForType(RpcType type) {
  constexpr int kNumTypes = static_cast<int>(RpcType::kSetQuota) + 1;
  static ClientRpcMetrics* table = [] {
    auto* entries = new ClientRpcMetrics[kNumTypes];
    auto& registry = obs::MetricsRegistry::Global();
    for (int i = 1; i < kNumTypes; ++i) {
      obs::MetricLabels labels{
          .operation = std::string(RpcTypeName(static_cast<RpcType>(i)))};
      entries[i].calls = registry.GetCounter("mtdb_rpc_total", labels);
      entries[i].timeouts =
          registry.GetCounter("mtdb_rpc_timeout_total", labels);
      entries[i].latency_us =
          registry.GetHistogram("mtdb_rpc_latency_us", labels);
    }
    return entries;
  }();
  int index = static_cast<int>(type);
  static const ClientRpcMetrics kEmpty;
  return index > 0 && index < kNumTypes ? table[index] : kEmpty;
}

}  // namespace

MachineClient::MachineClient(Transport* transport, RpcOptions options)
    : transport_(transport), options_(options) {
  watchdog_ = std::thread([this] { WatchdogLoop(); });
}

MachineClient::~MachineClient() {
  {
    platform::Guard lock(watchdog_mu_);
    watchdog_stop_ = true;
  }
  watchdog_cv_.NotifyAll();
  if (watchdog_.joinable()) watchdog_.join();
  // Control channels (and their transport threads) die before the transport:
  // the member order takes care of it, this is just explicit.
  control_channels_.clear();
}

void MachineClient::SetTimeoutListener(TimeoutListener listener) {
  platform::Guard lock(mu_);
  timeout_listener_ = std::move(listener);
}

std::unique_ptr<MachineClient::Session> MachineClient::OpenSession(
    int machine_id) {
  return std::unique_ptr<Session>(
      new Session(this, machine_id, transport_->OpenChannel(machine_id)));
}

// --- Session ---

void MachineClient::Session::BeginAsync(uint64_t txn_id,
                                        const std::string& db_name,
                                        bool read_only, ResponseHandler done) {
  RpcRequest request;
  request.type = RpcType::kBegin;
  request.txn_id = txn_id;
  request.db_name = db_name;
  request.read_only = read_only;
  request.trace_id = trace_id_.load(std::memory_order_relaxed);
  client_->CallWithDeadline(channel_.get(), machine_id_, request,
                            std::move(done));
}

void MachineClient::Session::ExecuteAsync(uint64_t txn_id,
                                          const std::string& db_name,
                                          const std::string& sql,
                                          const std::vector<Value>& params,
                                          int64_t debug_delay_us,
                                          ResponseHandler done) {
  RpcRequest request;
  request.type = RpcType::kExecute;
  request.txn_id = txn_id;
  request.db_name = db_name;
  request.sql = sql;
  request.params = params;
  request.debug_delay_us = debug_delay_us;
  request.trace_id = trace_id_.load(std::memory_order_relaxed);
  client_->CallWithDeadline(channel_.get(), machine_id_, request,
                            std::move(done));
}

void MachineClient::Session::ExecutePreparedAsync(
    uint64_t txn_id, const std::string& db_name, uint64_t stmt_handle,
    const std::vector<Value>& params, int64_t debug_delay_us,
    ResponseHandler done) {
  RpcRequest request;
  request.type = RpcType::kExecutePrepared;
  request.txn_id = txn_id;
  request.db_name = db_name;
  request.stmt_handle = stmt_handle;
  request.params = params;
  request.debug_delay_us = debug_delay_us;
  request.trace_id = trace_id_.load(std::memory_order_relaxed);
  client_->CallWithDeadline(channel_.get(), machine_id_, request,
                            std::move(done));
}

void MachineClient::Session::PrepareAsync(uint64_t txn_id,
                                          ResponseHandler done) {
  RpcRequest request;
  request.type = RpcType::kPrepare;
  request.txn_id = txn_id;
  request.trace_id = trace_id_.load(std::memory_order_relaxed);
  client_->CallWithDeadline(channel_.get(), machine_id_, request,
                            std::move(done));
}

void MachineClient::Session::CommitAsync(uint64_t txn_id,
                                         ResponseHandler done) {
  RpcRequest request;
  request.type = RpcType::kCommit;
  request.txn_id = txn_id;
  request.trace_id = trace_id_.load(std::memory_order_relaxed);
  client_->CallWithDeadline(channel_.get(), machine_id_, request,
                            std::move(done));
}

void MachineClient::Session::CommitPreparedAsync(uint64_t txn_id,
                                                 ResponseHandler done) {
  RpcRequest request;
  request.type = RpcType::kCommitPrepared;
  request.txn_id = txn_id;
  request.trace_id = trace_id_.load(std::memory_order_relaxed);
  client_->CallWithDeadline(channel_.get(), machine_id_, request,
                            std::move(done));
}

void MachineClient::Session::AbortAsync(uint64_t txn_id, ResponseHandler done) {
  RpcRequest request;
  request.type = RpcType::kAbort;
  request.txn_id = txn_id;
  request.trace_id = trace_id_.load(std::memory_order_relaxed);
  client_->CallWithDeadline(channel_.get(), machine_id_, request,
                            std::move(done));
}

// --- Control plane ---

Channel* MachineClient::ControlChannel(int machine_id) {
  platform::Guard lock(mu_);
  auto it = control_channels_.find(machine_id);
  if (it == control_channels_.end()) {
    it = control_channels_
             .emplace(machine_id, transport_->OpenChannel(machine_id))
             .first;
  }
  return it->second.get();
}

void MachineClient::ResetControlChannel(int machine_id) {
  std::unique_ptr<Channel> dropped;
  {
    platform::Guard lock(mu_);
    auto it = control_channels_.find(machine_id);
    if (it == control_channels_.end()) return;
    dropped = std::move(it->second);
    control_channels_.erase(it);
  }
  // Destroyed outside mu_: channel teardown joins transport threads.
}

RpcResponse MachineClient::ControlCall(int machine_id,
                                       const RpcRequest& request) {
  return CallSync(ControlChannel(machine_id), machine_id, request);
}

Status MachineClient::Health(int machine_id) {
  RpcRequest request;
  request.type = RpcType::kHealth;
  return ControlCall(machine_id, request).ToStatus();
}

Status MachineClient::CreateDatabase(int machine_id,
                                     const std::string& db_name) {
  RpcRequest request;
  request.type = RpcType::kCreateDatabase;
  request.db_name = db_name;
  return ControlCall(machine_id, request).ToStatus();
}

Status MachineClient::DropDatabase(int machine_id,
                                   const std::string& db_name) {
  RpcRequest request;
  request.type = RpcType::kDropDatabase;
  request.db_name = db_name;
  return ControlCall(machine_id, request).ToStatus();
}

Status MachineClient::HasDatabase(int machine_id, const std::string& db_name) {
  RpcRequest request;
  request.type = RpcType::kHasDatabase;
  request.db_name = db_name;
  return ControlCall(machine_id, request).ToStatus();
}

Status MachineClient::ExecuteDdl(int machine_id, const std::string& db_name,
                                 const std::string& sql) {
  RpcRequest request;
  request.type = RpcType::kExecuteDdl;
  request.db_name = db_name;
  request.sql = sql;
  return ControlCall(machine_id, request).ToStatus();
}

Result<uint64_t> MachineClient::PrepareStatement(int machine_id,
                                                 const std::string& db_name,
                                                 const std::string& sql) {
  RpcRequest request;
  request.type = RpcType::kPrepareStatement;
  request.db_name = db_name;
  request.sql = sql;
  RpcResponse response = ControlCall(machine_id, request);
  if (!response.ok()) return response.ToStatus();
  return response.stmt_handle;
}

Status MachineClient::BulkLoad(int machine_id, const std::string& db_name,
                               const std::string& table,
                               const std::vector<Row>& rows) {
  RpcRequest request;
  request.type = RpcType::kBulkLoad;
  request.db_name = db_name;
  request.table = table;
  request.rows = rows;
  return ControlCall(machine_id, request).ToStatus();
}

Result<std::vector<uint64_t>> MachineClient::ListPrepared(int machine_id) {
  RpcRequest request;
  request.type = RpcType::kListPrepared;
  RpcResponse response = ControlCall(machine_id, request);
  if (!response.ok()) return response.ToStatus();
  return std::move(response.txn_ids);
}

Result<std::vector<uint64_t>> MachineClient::ListActive(int machine_id) {
  RpcRequest request;
  request.type = RpcType::kListActive;
  RpcResponse response = ControlCall(machine_id, request);
  if (!response.ok()) return response.ToStatus();
  return std::move(response.txn_ids);
}

Result<std::vector<std::string>> MachineClient::ListTables(
    int machine_id, const std::string& db_name) {
  RpcRequest request;
  request.type = RpcType::kListTables;
  request.db_name = db_name;
  RpcResponse response = ControlCall(machine_id, request);
  if (!response.ok()) return response.ToStatus();
  return std::move(response.names);
}

Status MachineClient::CommitPrepared(int machine_id, uint64_t txn_id) {
  RpcRequest request;
  request.type = RpcType::kCommitPrepared;
  request.txn_id = txn_id;
  return ControlCall(machine_id, request).ToStatus();
}

Status MachineClient::Abort(int machine_id, uint64_t txn_id) {
  RpcRequest request;
  request.type = RpcType::kAbort;
  request.txn_id = txn_id;
  return ControlCall(machine_id, request).ToStatus();
}

Result<std::string> MachineClient::Stats(int machine_id) {
  RpcRequest request;
  request.type = RpcType::kStats;
  RpcResponse response = ControlCall(machine_id, request);
  if (!response.ok()) return response.ToStatus();
  return std::move(response.message);
}

Status MachineClient::SetQuota(int machine_id, const std::string& db_name,
                               double rate_tps, double burst, int weight) {
  RpcRequest request;
  request.type = RpcType::kSetQuota;
  request.db_name = db_name;
  request.params = {Value(rate_tps), Value(burst),
                    Value(static_cast<int64_t>(weight))};
  return ControlCall(machine_id, request).ToStatus();
}

Result<TableDump> MachineClient::DumpTable(int machine_id,
                                           const std::string& db_name,
                                           const std::string& table,
                                           uint64_t dump_txn_id,
                                           int64_t per_row_delay_us) {
  RpcRequest request;
  request.type = RpcType::kDumpTable;
  request.txn_id = dump_txn_id;
  request.db_name = db_name;
  request.table = table;
  request.per_row_delay_us = per_row_delay_us;
  auto channel = transport_->OpenChannel(machine_id);
  RpcResponse response = CallSync(channel.get(), machine_id, request);
  if (!response.ok()) return response.ToStatus();
  if (response.dumps.size() != 1) {
    return Status::Internal("DumpTable reply carried " +
                            std::to_string(response.dumps.size()) + " dumps");
  }
  return std::move(response.dumps[0]);
}

Result<std::vector<TableDump>> MachineClient::DumpDatabase(
    int machine_id, const std::string& db_name, uint64_t dump_txn_id,
    int64_t per_row_delay_us) {
  RpcRequest request;
  request.type = RpcType::kDumpDatabase;
  request.txn_id = dump_txn_id;
  request.db_name = db_name;
  request.per_row_delay_us = per_row_delay_us;
  auto channel = transport_->OpenChannel(machine_id);
  RpcResponse response = CallSync(channel.get(), machine_id, request);
  if (!response.ok()) return response.ToStatus();
  return std::move(response.dumps);
}

Status MachineClient::ApplyDump(int machine_id, const std::string& db_name,
                                const TableDump& dump) {
  RpcRequest request;
  request.type = RpcType::kApplyDump;
  request.db_name = db_name;
  request.dump = dump;
  auto channel = transport_->OpenChannel(machine_id);
  return CallSync(channel.get(), machine_id, request).ToStatus();
}

Result<std::vector<std::string>> MachineClient::WalDeltaRead(
    int machine_id, const std::string& db_name, uint64_t wal_cursor,
    uint64_t* frontier) {
  RpcRequest request;
  request.type = RpcType::kWalDeltaRead;
  request.db_name = db_name;
  request.wal_cursor = wal_cursor;
  // Transient channel, like the dump calls: a delta round can be large and
  // must not head-of-line-block the control channel.
  auto channel = transport_->OpenChannel(machine_id);
  RpcResponse response = CallSync(channel.get(), machine_id, request);
  if (!response.ok()) return response.ToStatus();
  *frontier = response.wal_lsn;
  return std::move(response.names);
}

Status MachineClient::WalDeltaApply(int machine_id, const std::string& db_name,
                                    const std::vector<std::string>& lines) {
  RpcRequest request;
  request.type = RpcType::kWalDeltaApply;
  request.db_name = db_name;
  request.lines = lines;
  auto channel = transport_->OpenChannel(machine_id);
  return CallSync(channel.get(), machine_id, request).ToStatus();
}

// --- Deadline machinery ---

void MachineClient::CallWithDeadline(Channel* channel, int machine_id,
                                     const RpcRequest& request,
                                     ResponseHandler handler) {
  auto state = std::make_shared<CallState>();
  state->handler = std::move(handler);
  state->machine_id = machine_id;
  state->type = request.type;
  state->trace_id = request.trace_id;
  state->start_us = NowMicros();

  if (options_.call_timeout_us > 0) {
    auto deadline = std::chrono::steady_clock::now() +
                    std::chrono::microseconds(options_.call_timeout_us);
    {
      platform::Guard lock(watchdog_mu_);
      deadlines_.emplace(deadline, state);
    }
    watchdog_cv_.NotifyAll();
  }

  channel->Call(request, [state](RpcResponse response) {
    ResponseHandler handler;
    {
      platform::Guard lock(state->mu);
      if (state->done) return;  // the deadline already answered
      state->done = true;
      handler = std::move(state->handler);
    }
    int64_t elapsed_us = NowMicros() - state->start_us;
    const ClientRpcMetrics& metrics = MetricsForType(state->type);
    obs::Increment(metrics.calls);
    obs::Observe(metrics.latency_us, elapsed_us);
    if (state->trace_id != 0) {
      obs::TraceSpan span;
      span.trace_id = state->trace_id;
      span.machine_id = state->machine_id;
      span.operation = std::string(RpcTypeName(state->type));
      span.start_us = state->start_us;
      span.client_duration_us = elapsed_us;
      span.server_duration_us = response.server_duration_us;
      span.code = response.code;
      obs::TraceCollector::Global().RecordSpan(span);
    }
    handler(std::move(response));
  });
}

RpcResponse MachineClient::CallSync(Channel* channel, int machine_id,
                                    const RpcRequest& request) {
  auto done = std::make_shared<std::promise<RpcResponse>>();
  auto future = done->get_future();
  CallWithDeadline(channel, machine_id, request,
                   [done](RpcResponse response) {
                     done->set_value(std::move(response));
                   });
  return future.get();
}

void MachineClient::WatchdogLoop() {
  platform::UniqueLock lock(watchdog_mu_);
  while (!watchdog_stop_) {
    if (deadlines_.empty()) {
      watchdog_cv_.Wait(lock);
      continue;
    }
    auto next = deadlines_.begin()->first;
    if (watchdog_cv_.WaitUntil(lock, next) == std::cv_status::no_timeout &&
        watchdog_stop_) {
      break;
    }
    auto now = std::chrono::steady_clock::now();
    std::vector<std::shared_ptr<CallState>> expired;
    while (!deadlines_.empty() && deadlines_.begin()->first <= now) {
      expired.push_back(std::move(deadlines_.begin()->second));
      deadlines_.erase(deadlines_.begin());
    }
    if (expired.empty()) continue;
    lock.unlock();
    for (auto& state : expired) {
      ResponseHandler handler;
      int machine_id = state->machine_id;
      {
        platform::Guard state_lock(state->mu);
        if (state->done) continue;  // reply arrived in time
        state->done = true;
        handler = std::move(state->handler);
      }
      MTDB_LOG(kWarning) << "rpc to machine " << machine_id
                         << " missed its deadline; treating as failed";
      const ClientRpcMetrics& metrics = MetricsForType(state->type);
      obs::Increment(metrics.calls);
      obs::Increment(metrics.timeouts);
      if (state->trace_id != 0) {
        obs::TraceSpan span;
        span.trace_id = state->trace_id;
        span.machine_id = machine_id;
        span.operation = std::string(RpcTypeName(state->type));
        span.start_us = state->start_us;
        span.client_duration_us = NowMicros() - state->start_us;
        span.code = StatusCode::kUnavailable;
        obs::TraceCollector::Global().RecordSpan(span);
      }
      handler(RpcResponse::FromStatus(Status::Unavailable(
          "rpc deadline exceeded (machine " + std::to_string(machine_id) +
          ")")));
      OnTimeout(machine_id);
    }
    lock.lock();
  }
}

void MachineClient::OnTimeout(int machine_id) {
  TimeoutListener listener;
  {
    platform::Guard lock(mu_);
    listener = timeout_listener_;
  }
  if (listener) listener(machine_id);
}

}  // namespace mtdb::net
