#ifndef MTDB_NET_CODEC_H_
#define MTDB_NET_CODEC_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "src/common/result.h"
#include "src/net/message.h"

namespace mtdb::net {

// The wire format (DESIGN.md §8): every message is one length-prefixed frame
//
//   frame   := u32 payload-length (little-endian) | payload
//   payload := u8 message-tag | fields...
//
// Fields are fixed-width little-endian integers; strings and repeated fields
// are u32-count-prefixed; SQL values use the tagged encoding of
// Value::EncodeTo. Decoding is fully bounds-checked: a truncated frame, a
// trailing byte, or an unknown tag yields an error Status, never a crash or
// a partial message.

// Frames larger than this are rejected as corrupt before any allocation.
inline constexpr uint32_t kMaxFrameBytes = 256u << 20;  // 256 MiB

// Serializes a message into a frame appended to *out.
void EncodeRequestFrame(const RpcRequest& request, std::string* out);
void EncodeResponseFrame(const RpcResponse& response, std::string* out);

// Frame splitting for stream transports. If `buffer` starts with a complete
// frame, returns its payload and sets *frame_size to the total bytes
// consumed (header + payload); otherwise returns nullopt (more bytes
// needed). An over-limit length prefix is reported via *error.
std::optional<std::string_view> ExtractFrame(std::string_view buffer,
                                             size_t* frame_size,
                                             Status* error);

// Decodes a frame payload (without the length prefix). The whole payload
// must be consumed: trailing bytes are rejected.
Result<RpcRequest> DecodeRequest(std::string_view payload);
Result<RpcResponse> DecodeResponse(std::string_view payload);

}  // namespace mtdb::net

#endif  // MTDB_NET_CODEC_H_
