#include "src/net/codec.h"

#include <cstring>

#include "src/obs/metrics.h"

namespace mtdb::net {

namespace {

// Payload tags distinguishing the two message directions.
constexpr uint8_t kRequestTag = 0xA1;
constexpr uint8_t kResponseTag = 0xA2;

void AppendU8(std::string* out, uint8_t v) {
  out->push_back(static_cast<char>(v));
}

void AppendU32(std::string* out, uint32_t v) {
  for (int shift = 0; shift < 32; shift += 8) {
    out->push_back(static_cast<char>((v >> shift) & 0xff));
  }
}

void AppendU64(std::string* out, uint64_t v) {
  for (int shift = 0; shift < 64; shift += 8) {
    out->push_back(static_cast<char>((v >> shift) & 0xff));
  }
}

void AppendString(std::string* out, const std::string& s) {
  AppendU32(out, static_cast<uint32_t>(s.size()));
  out->append(s);
}

// Bounds-checked reader over a frame payload. After the first failed read
// every subsequent read fails too, so decode functions can read
// unconditionally and check ok() once.
class Cursor {
 public:
  explicit Cursor(std::string_view data) : data_(data) {}

  bool ok() const { return ok_; }
  size_t remaining() const { return data_.size(); }

  uint8_t ReadU8() {
    if (!Require(1)) return 0;
    uint8_t v = static_cast<uint8_t>(data_[0]);
    data_.remove_prefix(1);
    return v;
  }

  uint32_t ReadU32() {
    if (!Require(4)) return 0;
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<uint32_t>(static_cast<uint8_t>(data_[i])) << (8 * i);
    }
    data_.remove_prefix(4);
    return v;
  }

  uint64_t ReadU64() {
    if (!Require(8)) return 0;
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<uint64_t>(static_cast<uint8_t>(data_[i])) << (8 * i);
    }
    data_.remove_prefix(8);
    return v;
  }

  std::string ReadString() {
    uint32_t len = ReadU32();
    if (!Require(len)) return {};
    std::string s(data_.substr(0, len));
    data_.remove_prefix(len);
    return s;
  }

  Value ReadValue() {
    if (!ok_) return Value::Null();
    auto value = Value::DecodeFrom(&data_);
    if (!value.ok()) {
      ok_ = false;
      return Value::Null();
    }
    return *std::move(value);
  }

  // Reads a u32 element count, bounded by the bytes actually remaining so a
  // corrupt count cannot trigger a huge allocation (every element encodes to
  // at least one byte).
  uint32_t ReadCount() {
    uint32_t n = ReadU32();
    if (n > remaining()) ok_ = false;
    return ok_ ? n : 0;
  }

 private:
  bool Require(size_t n) {
    if (!ok_ || data_.size() < n) {
      ok_ = false;
      return false;
    }
    return true;
  }

  std::string_view data_;
  bool ok_ = true;
};

void AppendRow(std::string* out, const Row& row) {
  AppendU32(out, static_cast<uint32_t>(row.size()));
  for (const Value& v : row) v.EncodeTo(out);
}

Row ReadRow(Cursor* in) {
  Row row;
  uint32_t arity = in->ReadCount();
  row.reserve(arity);
  for (uint32_t i = 0; i < arity && in->ok(); ++i) {
    row.push_back(in->ReadValue());
  }
  return row;
}

void AppendQueryResult(std::string* out, const sql::QueryResult& result) {
  AppendU32(out, static_cast<uint32_t>(result.columns.size()));
  for (const std::string& c : result.columns) AppendString(out, c);
  AppendU32(out, static_cast<uint32_t>(result.rows.size()));
  for (const Row& row : result.rows) AppendRow(out, row);
  AppendU64(out, static_cast<uint64_t>(result.affected_rows));
}

sql::QueryResult ReadQueryResult(Cursor* in) {
  sql::QueryResult result;
  uint32_t columns = in->ReadCount();
  result.columns.reserve(columns);
  for (uint32_t i = 0; i < columns && in->ok(); ++i) {
    result.columns.push_back(in->ReadString());
  }
  uint32_t rows = in->ReadCount();
  result.rows.reserve(rows);
  for (uint32_t i = 0; i < rows && in->ok(); ++i) {
    result.rows.push_back(ReadRow(in));
  }
  result.affected_rows = static_cast<int64_t>(in->ReadU64());
  return result;
}

void AppendSchema(std::string* out, const TableSchema& schema) {
  AppendString(out, schema.name());
  AppendU32(out, static_cast<uint32_t>(schema.columns().size()));
  for (const Column& c : schema.columns()) {
    AppendString(out, c.name);
    AppendU8(out, static_cast<uint8_t>(c.type));
    AppendU8(out, c.not_null ? 1 : 0);
  }
  AppendU32(out, static_cast<uint32_t>(schema.primary_key_index()));
  AppendU32(out, static_cast<uint32_t>(schema.indexes().size()));
  for (const IndexDef& index : schema.indexes()) {
    AppendString(out, index.name);
    AppendU32(out, static_cast<uint32_t>(index.column_index));
  }
}

TableSchema ReadSchema(Cursor* in) {
  std::string name = in->ReadString();
  uint32_t num_columns = in->ReadCount();
  std::vector<Column> columns;
  columns.reserve(num_columns);
  for (uint32_t i = 0; i < num_columns && in->ok(); ++i) {
    Column c;
    c.name = in->ReadString();
    c.type = static_cast<ColumnType>(in->ReadU8());
    c.not_null = in->ReadU8() != 0;
    columns.push_back(std::move(c));
  }
  int pk = static_cast<int32_t>(in->ReadU32());
  TableSchema schema(std::move(name), std::move(columns), pk);
  uint32_t num_indexes = in->ReadCount();
  for (uint32_t i = 0; i < num_indexes && in->ok(); ++i) {
    std::string index_name = in->ReadString();
    int column_index = static_cast<int32_t>(in->ReadU32());
    if (column_index >= 0 &&
        column_index < static_cast<int>(schema.columns().size())) {
      (void)schema.AddIndex(index_name, schema.columns()[column_index].name);
    }
  }
  return schema;
}

void AppendTableDump(std::string* out, const TableDump& dump) {
  AppendSchema(out, dump.schema);
  AppendU32(out, static_cast<uint32_t>(dump.rows.size()));
  for (const auto& [row, version] : dump.rows) {
    AppendRow(out, row);
    AppendU64(out, version);
  }
  AppendU64(out, dump.max_version);
}

TableDump ReadTableDump(Cursor* in) {
  TableDump dump;
  dump.schema = ReadSchema(in);
  uint32_t rows = in->ReadCount();
  dump.rows.reserve(rows);
  for (uint32_t i = 0; i < rows && in->ok(); ++i) {
    Row row = ReadRow(in);
    uint64_t version = in->ReadU64();
    dump.rows.emplace_back(std::move(row), version);
  }
  dump.max_version = in->ReadU64();
  return dump;
}

}  // namespace

std::string_view RpcTypeName(RpcType type) {
  switch (type) {
    case RpcType::kHealth: return "Health";
    case RpcType::kBegin: return "Begin";
    case RpcType::kExecute: return "Execute";
    case RpcType::kPrepare: return "Prepare";
    case RpcType::kCommit: return "Commit";
    case RpcType::kCommitPrepared: return "CommitPrepared";
    case RpcType::kAbort: return "Abort";
    case RpcType::kCreateDatabase: return "CreateDatabase";
    case RpcType::kDropDatabase: return "DropDatabase";
    case RpcType::kHasDatabase: return "HasDatabase";
    case RpcType::kExecuteDdl: return "ExecuteDdl";
    case RpcType::kBulkLoad: return "BulkLoad";
    case RpcType::kDumpTable: return "DumpTable";
    case RpcType::kDumpDatabase: return "DumpDatabase";
    case RpcType::kApplyDump: return "ApplyDump";
    case RpcType::kListPrepared: return "ListPrepared";
    case RpcType::kListActive: return "ListActive";
    case RpcType::kListTables: return "ListTables";
    case RpcType::kPrepareStatement: return "PrepareStatement";
    case RpcType::kExecutePrepared: return "ExecutePrepared";
    case RpcType::kStats: return "Stats";
    case RpcType::kSetQuota: return "SetQuota";
    case RpcType::kWalDeltaRead: return "WalDeltaRead";
    case RpcType::kWalDeltaApply: return "WalDeltaApply";
  }
  return "?";
}

namespace {

constexpr int kNumRpcTypes = static_cast<int>(RpcType::kWalDeltaApply) + 1;

// Per-type request byte counters, resolved once. Encoding is the one place
// that sees every outbound request regardless of transport.
obs::Counter* RequestBytesCounter(RpcType type) {
  static obs::Counter** counters = [] {
    auto** array = new obs::Counter*[kNumRpcTypes]();
    for (int i = 1; i < kNumRpcTypes; ++i) {
      array[i] = obs::MetricsRegistry::Global().GetCounter(
          "mtdb_rpc_request_bytes_total",
          {.operation = std::string(RpcTypeName(static_cast<RpcType>(i)))});
    }
    return array;
  }();
  int index = static_cast<int>(type);
  return index > 0 && index < kNumRpcTypes ? counters[index] : nullptr;
}

obs::Counter* ResponseBytesCounter() {
  static obs::Counter* counter = obs::MetricsRegistry::Global().GetCounter(
      "mtdb_rpc_response_bytes_total", {});
  return counter;
}

}  // namespace

void EncodeRequestFrame(const RpcRequest& request, std::string* out) {
  size_t frame_start = out->size();
  AppendU32(out, 0);  // patched below
  AppendU8(out, kRequestTag);
  AppendU8(out, static_cast<uint8_t>(request.type));
  AppendU64(out, request.txn_id);
  AppendString(out, request.db_name);
  AppendString(out, request.table);
  AppendString(out, request.sql);
  AppendU32(out, static_cast<uint32_t>(request.params.size()));
  for (const Value& v : request.params) v.EncodeTo(out);
  AppendU32(out, static_cast<uint32_t>(request.rows.size()));
  for (const Row& row : request.rows) AppendRow(out, row);
  AppendTableDump(out, request.dump);
  AppendU64(out, static_cast<uint64_t>(request.per_row_delay_us));
  AppendU64(out, static_cast<uint64_t>(request.debug_delay_us));
  AppendU64(out, request.stmt_handle);
  AppendU64(out, request.trace_id);
  AppendU8(out, request.read_only ? 1 : 0);
  AppendU64(out, request.wal_cursor);
  AppendU32(out, static_cast<uint32_t>(request.lines.size()));
  for (const std::string& line : request.lines) AppendString(out, line);
  uint32_t payload = static_cast<uint32_t>(out->size() - frame_start - 4);
  for (int i = 0; i < 4; ++i) {
    (*out)[frame_start + i] = static_cast<char>((payload >> (8 * i)) & 0xff);
  }
  obs::Increment(RequestBytesCounter(request.type),
                 static_cast<int64_t>(payload) + 4);
}

void EncodeResponseFrame(const RpcResponse& response, std::string* out) {
  size_t frame_start = out->size();
  AppendU32(out, 0);  // patched below
  AppendU8(out, kResponseTag);
  AppendU8(out, static_cast<uint8_t>(response.code));
  AppendString(out, response.message);
  AppendQueryResult(out, response.result);
  AppendU32(out, static_cast<uint32_t>(response.dumps.size()));
  for (const TableDump& dump : response.dumps) AppendTableDump(out, dump);
  AppendU32(out, static_cast<uint32_t>(response.txn_ids.size()));
  for (uint64_t id : response.txn_ids) AppendU64(out, id);
  AppendU32(out, static_cast<uint32_t>(response.names.size()));
  for (const std::string& name : response.names) AppendString(out, name);
  AppendU64(out, response.stmt_handle);
  AppendU64(out, static_cast<uint64_t>(response.server_duration_us));
  AppendU64(out, static_cast<uint64_t>(response.retry_after_us));
  AppendU64(out, response.snapshot_ts);
  AppendU64(out, response.wal_lsn);
  uint32_t payload = static_cast<uint32_t>(out->size() - frame_start - 4);
  for (int i = 0; i < 4; ++i) {
    (*out)[frame_start + i] = static_cast<char>((payload >> (8 * i)) & 0xff);
  }
  obs::Increment(ResponseBytesCounter(), static_cast<int64_t>(payload) + 4);
}

std::optional<std::string_view> ExtractFrame(std::string_view buffer,
                                             size_t* frame_size,
                                             Status* error) {
  *error = Status::OK();
  if (buffer.size() < 4) return std::nullopt;
  uint32_t len = 0;
  for (int i = 0; i < 4; ++i) {
    len |= static_cast<uint32_t>(static_cast<uint8_t>(buffer[i])) << (8 * i);
  }
  if (len > kMaxFrameBytes) {
    *error = Status::InvalidArgument("frame length " + std::to_string(len) +
                                     " exceeds limit");
    return std::nullopt;
  }
  if (buffer.size() < 4 + static_cast<size_t>(len)) return std::nullopt;
  *frame_size = 4 + static_cast<size_t>(len);
  return buffer.substr(4, len);
}

Result<RpcRequest> DecodeRequest(std::string_view payload) {
  Cursor in(payload);
  if (in.ReadU8() != kRequestTag) {
    return Status::InvalidArgument("not a request frame");
  }
  RpcRequest request;
  uint8_t type = in.ReadU8();
  if (type < static_cast<uint8_t>(RpcType::kHealth) ||
      type > static_cast<uint8_t>(RpcType::kWalDeltaApply)) {
    return Status::InvalidArgument("unknown request type " +
                                   std::to_string(type));
  }
  request.type = static_cast<RpcType>(type);
  request.txn_id = in.ReadU64();
  request.db_name = in.ReadString();
  request.table = in.ReadString();
  request.sql = in.ReadString();
  uint32_t params = in.ReadCount();
  request.params.reserve(params);
  for (uint32_t i = 0; i < params && in.ok(); ++i) {
    request.params.push_back(in.ReadValue());
  }
  uint32_t rows = in.ReadCount();
  request.rows.reserve(rows);
  for (uint32_t i = 0; i < rows && in.ok(); ++i) {
    request.rows.push_back(ReadRow(&in));
  }
  request.dump = ReadTableDump(&in);
  request.per_row_delay_us = static_cast<int64_t>(in.ReadU64());
  request.debug_delay_us = static_cast<int64_t>(in.ReadU64());
  request.stmt_handle = in.ReadU64();
  request.trace_id = in.ReadU64();
  request.read_only = in.ReadU8() != 0;
  request.wal_cursor = in.ReadU64();
  uint32_t lines = in.ReadCount();
  request.lines.reserve(lines);
  for (uint32_t i = 0; i < lines && in.ok(); ++i) {
    request.lines.push_back(in.ReadString());
  }
  if (!in.ok()) return Status::InvalidArgument("truncated request frame");
  if (in.remaining() != 0) {
    return Status::InvalidArgument("trailing bytes after request frame");
  }
  return request;
}

Result<RpcResponse> DecodeResponse(std::string_view payload) {
  Cursor in(payload);
  if (in.ReadU8() != kResponseTag) {
    return Status::InvalidArgument("not a response frame");
  }
  RpcResponse response;
  uint8_t code = in.ReadU8();
  if (code > static_cast<uint8_t>(StatusCode::kResourceExhausted)) {
    return Status::InvalidArgument("unknown status code " +
                                   std::to_string(code));
  }
  response.code = static_cast<StatusCode>(code);
  response.message = in.ReadString();
  response.result = ReadQueryResult(&in);
  uint32_t dumps = in.ReadCount();
  response.dumps.reserve(dumps);
  for (uint32_t i = 0; i < dumps && in.ok(); ++i) {
    response.dumps.push_back(ReadTableDump(&in));
  }
  uint32_t txns = in.ReadCount();
  response.txn_ids.reserve(txns);
  for (uint32_t i = 0; i < txns && in.ok(); ++i) {
    response.txn_ids.push_back(in.ReadU64());
  }
  uint32_t names = in.ReadCount();
  response.names.reserve(names);
  for (uint32_t i = 0; i < names && in.ok(); ++i) {
    response.names.push_back(in.ReadString());
  }
  response.stmt_handle = in.ReadU64();
  response.server_duration_us = static_cast<int64_t>(in.ReadU64());
  response.retry_after_us = static_cast<int64_t>(in.ReadU64());
  response.snapshot_ts = in.ReadU64();
  response.wal_lsn = in.ReadU64();
  if (!in.ok()) return Status::InvalidArgument("truncated response frame");
  if (in.remaining() != 0) {
    return Status::InvalidArgument("trailing bytes after response frame");
  }
  return response;
}

}  // namespace mtdb::net
