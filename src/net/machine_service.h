#ifndef MTDB_NET_MACHINE_SERVICE_H_
#define MTDB_NET_MACHINE_SERVICE_H_

#include "src/net/message.h"

namespace mtdb {
class Machine;
}

namespace mtdb::net {

// The machine-side RPC endpoint: turns one decoded RpcRequest into one
// RpcResponse by dispatching onto the Machine's engine through the existing
// semaphore/latency machinery. Stateless across requests — statement caching
// lives in the engine's plan cache (Engine::GetPlan), so any transport
// (in-process strand, TCP connection thread) can call Dispatch concurrently.
class MachineService {
 public:
  explicit MachineService(Machine* machine);

  MachineService(const MachineService&) = delete;
  MachineService& operator=(const MachineService&) = delete;

  Machine* machine() const { return machine_; }

  // Executes one request to completion. Never throws; every failure comes
  // back as a Status code in the response.
  RpcResponse Dispatch(const RpcRequest& request);

 private:
  RpcResponse DispatchTransactional(const RpcRequest& request);
  RpcResponse DispatchControl(const RpcRequest& request);

  Machine* machine_;
};

}  // namespace mtdb::net

#endif  // MTDB_NET_MACHINE_SERVICE_H_
