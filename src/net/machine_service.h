#ifndef MTDB_NET_MACHINE_SERVICE_H_
#define MTDB_NET_MACHINE_SERVICE_H_

#include <cstddef>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "src/net/message.h"
#include "src/sql/ast.h"

namespace mtdb {
class Machine;
}

namespace mtdb::net {

// The machine-side RPC endpoint: turns one decoded RpcRequest into one
// RpcResponse by dispatching onto the Machine's engine through the existing
// semaphore/latency machinery. Stateless across requests apart from a
// bounded cache of parsed '?'-parameterized statements, so any transport
// (in-process strand, TCP connection thread) can call Dispatch concurrently.
class MachineService {
 public:
  explicit MachineService(Machine* machine);

  MachineService(const MachineService&) = delete;
  MachineService& operator=(const MachineService&) = delete;

  Machine* machine() const { return machine_; }

  // Executes one request to completion. Never throws; every failure comes
  // back as a Status code in the response.
  RpcResponse Dispatch(const RpcRequest& request);

 private:
  RpcResponse DispatchTransactional(const RpcRequest& request);
  RpcResponse DispatchControl(const RpcRequest& request);

  // Parses `sql`, caching the AST when the statement is '?'-parameterized
  // (TPC-W-style prepared statements). Literal-embedding SQL is parsed
  // fresh each time — caching it would grow without bound.
  Result<std::shared_ptr<const sql::Statement>> ParseCached(
      const std::string& sql);

  static constexpr size_t kMaxCachedStatements = 512;

  Machine* machine_;
  std::mutex cache_mu_;
  std::map<std::string, std::shared_ptr<const sql::Statement>> stmt_cache_;
};

}  // namespace mtdb::net

#endif  // MTDB_NET_MACHINE_SERVICE_H_
