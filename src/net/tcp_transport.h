#ifndef MTDB_NET_TCP_TRANSPORT_H_
#define MTDB_NET_TCP_TRANSPORT_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/net/transport.h"
#include "src/platform/mutex.h"

namespace mtdb::net {

// Machine-side socket server: accepts connections and answers framed
// RpcRequests by dispatching them on a MachineService. Each accepted
// connection is serviced by one thread that reads, dispatches, and replies
// strictly in order — the FIFO-per-channel contract of Transport. Used by
// the mtdbd daemon (tools/mtdbd.cc) and by in-process TCP tests.
class TcpServer {
 public:
  explicit TcpServer(MachineService* service);
  ~TcpServer();  // calls Stop()

  TcpServer(const TcpServer&) = delete;
  TcpServer& operator=(const TcpServer&) = delete;

  // Binds 0.0.0.0:port (0 = kernel-assigned ephemeral port) and starts the
  // accept loop.
  Status Start(uint16_t port);

  // Port actually bound; valid after a successful Start.
  uint16_t port() const { return port_; }

  // Shuts the listener, closes live connections, joins all threads.
  void Stop();

 private:
  void AcceptLoop();
  void ServeConnection(int fd);

  MachineService* service_;
  std::atomic<bool> stopping_{false};
  std::atomic<int> listen_fd_{-1};
  uint16_t port_ = 0;
  std::thread accept_thread_;
  platform::Mutex mu_{"net/TcpServer::mu"};
  std::vector<std::thread> connection_threads_ MTDB_GUARDED_BY(mu_);
  std::vector<int> connection_fds_ MTDB_GUARDED_BY(mu_);
};

// Client-side transport: one TCP connection per channel, pipelined. Call
// writes the request frame and queues the handler; a reader thread matches
// replies to handlers in FIFO order (the server replies in order, so no
// request ids are needed). A dead socket fails all queued and future calls
// with kUnavailable — the MachineClient deadline then converts silence into
// machine failure.
class TcpTransport : public Transport {
 public:
  TcpTransport() = default;

  // Registers where machine_id lives. Channels to unregistered ids are
  // unreachable (every call answers kUnavailable).
  void AddEndpoint(int machine_id, const std::string& host, uint16_t port);

  std::unique_ptr<Channel> OpenChannel(int machine_id) override;
  std::string name() const override { return "tcp"; }

 private:
  struct Endpoint {
    std::string host;
    uint16_t port;
  };

  platform::Mutex mu_{"net/TcpTransport::mu"};
  std::map<int, Endpoint> endpoints_ MTDB_GUARDED_BY(mu_);
};

}  // namespace mtdb::net

#endif  // MTDB_NET_TCP_TRANSPORT_H_
