#ifndef MTDB_NET_MESSAGE_H_
#define MTDB_NET_MESSAGE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/status.h"
#include "src/sql/query_result.h"
#include "src/storage/dump.h"
#include "src/storage/value.h"

namespace mtdb::net {

// Every controller->machine interaction, as a message type. Transactional
// requests (kBegin..kAbort) ride a per-session ordered channel; the rest are
// control-plane requests issued outside client transactions.
enum class RpcType : uint8_t {
  kHealth = 1,         // liveness probe
  kBegin = 2,          // start engine-side transaction txn_id
  kExecute = 3,        // run one SQL statement inside txn_id
  kPrepare = 4,        // 2PC phase 1 (the vote is the response Status)
  kCommit = 5,         // one-phase commit (read-only / single participant)
  kCommitPrepared = 6, // 2PC phase 2
  kAbort = 7,
  kCreateDatabase = 8,
  kDropDatabase = 9,
  kHasDatabase = 10,   // catalog probe (recovery target selection)
  kExecuteDdl = 11,    // DDL statement, run outside client transactions
  kBulkLoad = 12,      // non-transactional bulk insert (setup / data gen)
  kDumpTable = 13,     // copy-tool source side (Algorithm 1 recovery)
  kDumpDatabase = 14,  // database-granularity dump
  kApplyDump = 15,     // copy-tool target side: install one table dump
  kListPrepared = 16,  // prepared txn ids (process-pair takeover)
  kListActive = 17,    // active txn ids (process-pair takeover)
  kListTables = 18,    // table names of one database (recovery work list)
  kPrepareStatement = 19,  // prepare SQL once, reply with a statement handle
  kExecutePrepared = 20,   // run a prepared handle inside txn_id
  kStats = 21,             // metrics dump (text exposition in the message)
  kSetQuota = 22,          // install a QoS quota for db_name on the machine
  kWalDeltaRead = 23,      // live migration: committed WAL delta since cursor
  kWalDeltaApply = 24,     // live migration: replay delta lines on the target
};

std::string_view RpcTypeName(RpcType type);

// A decoded request. One struct covers every RpcType; unused fields stay at
// their defaults and encode to nothing beyond their presence tags.
struct RpcRequest {
  RpcType type = RpcType::kHealth;
  uint64_t txn_id = 0;            // transactional ops, kDumpTable (dump txn)
  std::string db_name;            // everything except kHealth/kList*
  std::string table;              // kBulkLoad / kDumpTable
  std::string sql;                // kExecute / kExecuteDdl / kPrepareStatement
  // kExecute / kExecutePrepared ('?' binding); kSetQuota carries the quota
  // triple [rate_tps (double), burst (double), weight (int)] here.
  std::vector<Value> params;
  uint64_t stmt_handle = 0;       // kExecutePrepared
  std::vector<Row> rows;          // kBulkLoad
  TableDump dump;                 // kApplyDump
  int64_t per_row_delay_us = 0;   // kDumpTable / kDumpDatabase copy-cost model
  // Test instrumentation: extra service delay applied before execution (the
  // controller's latency injector rides the wire so fault schedules stay
  // deterministic across transports).
  int64_t debug_delay_us = 0;
  // Distributed-tracing correlation id minted by the issuing Connection;
  // 0 means "not part of a traced transaction".
  uint64_t trace_id = 0;
  // kBegin: start the transaction in read-only snapshot mode — reads come
  // from the MVCC snapshot without lock-manager traffic, writes are
  // rejected. Always on the wire; old-format frames fail decoding.
  bool read_only = false;
  // kWalDeltaRead: ship committed records for db_name past this source-WAL
  // frontier (LSN). UINT64_MAX is a capability probe: no lines, frontier
  // only. Always on the wire, like read_only.
  uint64_t wal_cursor = 0;
  // kWalDeltaApply: raw WAL lines to replay (as returned by kWalDeltaRead).
  std::vector<std::string> lines;
};

// A decoded response. `code`/`message` carry the operation Status; payload
// fields are filled per request type.
struct RpcResponse {
  StatusCode code = StatusCode::kOk;
  std::string message;
  sql::QueryResult result;         // kExecute / kExecuteDdl
  std::vector<TableDump> dumps;    // kDumpTable (one) / kDumpDatabase (all)
  std::vector<uint64_t> txn_ids;   // kListPrepared / kListActive
  std::vector<std::string> names;  // kListTables
  uint64_t stmt_handle = 0;        // kPrepareStatement
  // Service time measured machine-side (dispatch entry to reply), echoed to
  // the client so traces can split client-observed latency into transport
  // vs execution. -1 when the server predates the field or never measured.
  int64_t server_duration_us = -1;
  // Backoff hint accompanying a kResourceExhausted code: how long the
  // caller should wait before retrying the same machine, in microseconds.
  // 0 (the default, and the value on every non-throttled response) means
  // "no hint". Always on the wire, like trace_id/server_duration_us.
  int64_t retry_after_us = 0;
  // kBegin on a read-only transaction: the engine-local MVCC snapshot
  // timestamp assigned to it (0 for read-write begins and every other
  // response type). Always on the wire, like retry_after_us.
  uint64_t snapshot_ts = 0;
  // kWalDeltaRead: the source-WAL frontier (LSN of the last complete line)
  // the returned delta catches the caller up to; feed it back as the next
  // round's wal_cursor. 0 elsewhere. Always on the wire, like snapshot_ts.
  // The delta lines themselves travel in `names`.
  uint64_t wal_lsn = 0;

  bool ok() const { return code == StatusCode::kOk; }
  Status ToStatus() const {
    return ok() ? Status::OK() : Status(code, message);
  }
  static RpcResponse FromStatus(const Status& status) {
    RpcResponse response;
    response.code = status.code();
    response.message = status.message();
    return response;
  }
};

}  // namespace mtdb::net

#endif  // MTDB_NET_MESSAGE_H_
