#ifndef MTDB_NET_INPROC_TRANSPORT_H_
#define MTDB_NET_INPROC_TRANSPORT_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>

#include "src/net/transport.h"
#include "src/platform/mutex.h"

namespace mtdb::net {

// Deterministic in-process transport. Every Call still runs the full
// marshalling round trip (encode request -> decode request -> dispatch ->
// encode response -> decode response), so the wire codec is exercised by
// every cluster test, but delivery is a function call on a per-channel
// strand — the same FIFO-per-(connection,machine) ordering a dedicated TCP
// connection provides, with none of the scheduling nondeterminism.
//
// Fault injection:
//  * SetFaultHook decides per request whether to deliver it, drop it before
//    the service sees it (lost request), or execute it but drop the reply
//    (lost response — the dangerous 2PC case: the participant has voted but
//    the coordinator never hears it).
//  * SetLatencyHook adds per-request delivery delay.
//  * PartitionMachine makes a machine unreachable (every call times out at
//    the client) until HealMachine.
// Hooks run inside the channel's strand, after the request is already
// serialized, so they see exactly what would have hit the wire.
class InProcTransport : public Transport {
 public:
  enum class Fault {
    kDeliver,      // normal delivery
    kDropRequest,  // lose the request before the service executes it
    kDropReply,    // execute the request, lose the response
  };

  using FaultHook = std::function<Fault(int machine_id, const RpcRequest&)>;
  using LatencyHook =
      std::function<int64_t(int machine_id, const RpcRequest&)>;

  InProcTransport() = default;

  std::unique_ptr<Channel> OpenChannel(int machine_id) override;
  void AttachLocal(int machine_id, MachineService* service) override;
  std::string name() const override { return "inproc"; }

  void SetFaultHook(FaultHook hook);
  void SetLatencyHook(LatencyHook hook);

  // Cuts / restores all delivery to one machine (requests and replies).
  void PartitionMachine(int machine_id);
  void HealMachine(int machine_id);

  // Number of requests fully delivered (dispatched with the reply handed to
  // the caller) since construction. Lets tests assert traffic actually
  // crossed the transport.
  int64_t delivered_count() const {
    return delivered_.load(std::memory_order_relaxed);
  }

 private:
  class InProcChannel;

  // Returns kDeliver/kDropRequest/kDropReply for this request, folding in
  // partitions. Looks up the service; null means unreachable.
  MachineService* Lookup(int machine_id) const;
  Fault EvaluateFault(int machine_id, const RpcRequest& request) const;
  int64_t EvaluateLatency(int machine_id, const RpcRequest& request) const;

  mutable platform::Mutex mu_{"net/InProcTransport::mu"};
  std::map<int, MachineService*> services_ MTDB_GUARDED_BY(mu_);
  std::set<int> partitioned_ MTDB_GUARDED_BY(mu_);
  FaultHook fault_hook_ MTDB_GUARDED_BY(mu_);
  LatencyHook latency_hook_ MTDB_GUARDED_BY(mu_);
  std::atomic<int64_t> delivered_{0};
};

}  // namespace mtdb::net

#endif  // MTDB_NET_INPROC_TRANSPORT_H_
