#ifndef MTDB_NET_TRANSPORT_H_
#define MTDB_NET_TRANSPORT_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "src/net/message.h"

namespace mtdb::net {

class MachineService;

// Invoked with the reply to one Call. A transport invokes the handler at
// most once; it may never invoke it at all when the reply is lost (dropped
// by fault injection, or the peer vanished without an error the transport
// can observe). MachineClient layers a deadline watchdog on top so callers
// always hear back exactly once.
using ResponseHandler = std::function<void(RpcResponse)>;

// An ordered, bidirectional message stream to one machine — the moral
// equivalent of one client connection to a per-machine DBMS process.
// Requests sent on one channel are executed by the machine in FIFO order;
// delivered replies arrive in the same order. Call is thread-safe.
class Channel {
 public:
  virtual ~Channel() = default;

  Channel(const Channel&) = delete;
  Channel& operator=(const Channel&) = delete;

  virtual void Call(const RpcRequest& request, ResponseHandler handler) = 0;

 protected:
  Channel() = default;
};

// Factory for channels to machines, keyed by machine id. Implementations:
// InProcTransport (deterministic in-process delivery with fault injection)
// and TcpTransport (real sockets against mtdbd server processes).
class Transport {
 public:
  virtual ~Transport() = default;

  Transport(const Transport&) = delete;
  Transport& operator=(const Transport&) = delete;

  // Opens an ordered channel to `machine_id`. Never fails: channels to
  // unknown or unreachable machines answer every call with kUnavailable.
  virtual std::unique_ptr<Channel> OpenChannel(int machine_id) = 0;

  // Hosts a machine's service endpoint inside this transport. In-process
  // transports dispatch to it directly; remote transports ignore this (the
  // server process hosts the service, see tools/mtdbd.cc).
  virtual void AttachLocal(int machine_id, MachineService* service) {
    (void)machine_id;
    (void)service;
  }

  virtual std::string name() const = 0;

 protected:
  Transport() = default;
};

// A channel whose peer does not exist: every call answers kUnavailable
// immediately. Returned by transports for unknown machine ids.
class UnreachableChannel : public Channel {
 public:
  explicit UnreachableChannel(int machine_id) : machine_id_(machine_id) {}

  void Call(const RpcRequest& request, ResponseHandler handler) override {
    (void)request;
    handler(RpcResponse::FromStatus(Status::Unavailable(
        "no route to machine " + std::to_string(machine_id_))));
  }

 private:
  int machine_id_;
};

}  // namespace mtdb::net

#endif  // MTDB_NET_TRANSPORT_H_
