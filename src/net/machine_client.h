#ifndef MTDB_NET_MACHINE_CLIENT_H_
#define MTDB_NET_MACHINE_CLIENT_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/common/result.h"
#include "src/net/message.h"
#include "src/net/transport.h"
#include "src/platform/mutex.h"

namespace mtdb::net {

struct RpcOptions {
  // Per-call deadline. A call with no reply by then completes with
  // kUnavailable and fires the timeout listener (the paper's fail-stop
  // model: silence is indistinguishable from death, so the controller
  // declares the machine failed and recovers). <= 0 disables deadlines.
  int64_t call_timeout_us = 60'000'000;
};

// The controller's client stub for talking to machines. Everything the
// cluster controller wants from a machine goes through here as an RPC; this
// class adds the reliability layer transports do not provide:
//  * every call completes exactly once — with the reply, or with
//    kUnavailable when the deadline passes first;
//  * a deadline expiry notifies the timeout listener so lost machines feed
//    the existing failure/recovery path.
class MachineClient {
 public:
  using TimeoutListener = std::function<void(int machine_id)>;

  explicit MachineClient(Transport* transport, RpcOptions options = {});
  ~MachineClient();

  MachineClient(const MachineClient&) = delete;
  MachineClient& operator=(const MachineClient&) = delete;

  const RpcOptions& options() const { return options_; }

  void SetTimeoutListener(TimeoutListener listener);

  // The client end of one (connection, machine) conversation: owns a
  // dedicated channel, so the machine executes this session's requests in
  // submission order — the ordering contract transactions rely on.
  class Session {
   public:
    int machine_id() const { return machine_id_; }

    // Trace id stamped on every subsequent request from this session (0
    // disables). Set by the owning Connection at transaction boundaries.
    void SetTraceId(uint64_t trace_id) {
      trace_id_.store(trace_id, std::memory_order_relaxed);
    }

    // Starts the engine-side transaction. The reply carries the QoS
    // admission verdict: kResourceExhausted + retry_after_us when the
    // tenant is over quota or the machine is shedding, so the caller can
    // back off and retry the *same* machine instead of failing over.
    // `read_only` requests MVCC snapshot mode; the reply's snapshot_ts is
    // the engine-local snapshot timestamp assigned to the transaction.
    void BeginAsync(uint64_t txn_id, const std::string& db_name,
                    bool read_only, ResponseHandler done);

    void ExecuteAsync(uint64_t txn_id, const std::string& db_name,
                      const std::string& sql, const std::vector<Value>& params,
                      int64_t debug_delay_us, ResponseHandler done);
    // Runs a statement handle previously minted by PrepareStatement on this
    // session's machine. Parse/plan is skipped machine-side; the plan cache
    // re-plans transparently after DDL.
    void ExecutePreparedAsync(uint64_t txn_id, const std::string& db_name,
                              uint64_t stmt_handle,
                              const std::vector<Value>& params,
                              int64_t debug_delay_us, ResponseHandler done);
    void PrepareAsync(uint64_t txn_id, ResponseHandler done);
    void CommitAsync(uint64_t txn_id, ResponseHandler done);
    void CommitPreparedAsync(uint64_t txn_id, ResponseHandler done);
    void AbortAsync(uint64_t txn_id, ResponseHandler done);

   private:
    friend class MachineClient;
    Session(MachineClient* client, int machine_id,
            std::unique_ptr<Channel> channel)
        : client_(client), machine_id_(machine_id),
          channel_(std::move(channel)) {}

    MachineClient* client_;
    int machine_id_;
    std::unique_ptr<Channel> channel_;
    std::atomic<uint64_t> trace_id_{0};
  };

  std::unique_ptr<Session> OpenSession(int machine_id);

  // --- Control plane (synchronous; shared per-machine control channel) ---
  Status Health(int machine_id);
  Status CreateDatabase(int machine_id, const std::string& db_name);
  Status DropDatabase(int machine_id, const std::string& db_name);
  // OK when the machine hosts db_name, kNotFound otherwise.
  Status HasDatabase(int machine_id, const std::string& db_name);
  Status ExecuteDdl(int machine_id, const std::string& db_name,
                    const std::string& sql);
  // Parse+plan `sql` once on the machine; returns the machine-local statement
  // handle for Session::ExecutePreparedAsync. Handles do not survive machine
  // recovery — callers must re-prepare after a machine is replaced.
  Result<uint64_t> PrepareStatement(int machine_id, const std::string& db_name,
                                    const std::string& sql);
  Status BulkLoad(int machine_id, const std::string& db_name,
                  const std::string& table, const std::vector<Row>& rows);
  Result<std::vector<uint64_t>> ListPrepared(int machine_id);
  Result<std::vector<uint64_t>> ListActive(int machine_id);
  Result<std::vector<std::string>> ListTables(int machine_id,
                                              const std::string& db_name);
  // 2PC resolution outside a session (controller takeover).
  Status CommitPrepared(int machine_id, uint64_t txn_id);
  Status Abort(int machine_id, uint64_t txn_id);

  // Text-format metrics dump from the machine (kStats). Answered even by
  // machines marked failed, like kHealth — stats are for diagnosis.
  Result<std::string> Stats(int machine_id);

  // Installs the QoS admission quota and WDRR weight for db_name on the
  // machine (kSetQuota). rate_tps <= 0 removes the rate limit.
  Status SetQuota(int machine_id, const std::string& db_name, double rate_tps,
                  double burst, int weight);

  // Copy-tool calls run on a transient channel of their own: a dump can
  // legitimately take seconds (per_row_delay_us models the paper's copy
  // cost) and must not head-of-line-block the control channel.
  Result<TableDump> DumpTable(int machine_id, const std::string& db_name,
                              const std::string& table, uint64_t dump_txn_id,
                              int64_t per_row_delay_us);
  Result<std::vector<TableDump>> DumpDatabase(int machine_id,
                                              const std::string& db_name,
                                              uint64_t dump_txn_id,
                                              int64_t per_row_delay_us);
  Status ApplyDump(int machine_id, const std::string& db_name,
                   const TableDump& dump);

  // Live-migration delta calls (kWalDeltaRead / kWalDeltaApply); transient
  // channels, like the dump calls. WalDeltaRead returns the raw WAL lines
  // the target must replay to catch db_name up past `wal_cursor`, and sets
  // `*frontier` to the source-WAL LSN the delta reaches (the next round's
  // cursor). Cursor UINT64_MAX is a probe: frontier only, no lines; a
  // source without a WAL answers kFailedPrecondition.
  Result<std::vector<std::string>> WalDeltaRead(int machine_id,
                                                const std::string& db_name,
                                                uint64_t wal_cursor,
                                                uint64_t* frontier);
  // Replays delta lines on the target (DDL idempotently, row images as
  // upserts). Lines must come from WalDeltaRead against the same database.
  Status WalDeltaApply(int machine_id, const std::string& db_name,
                       const std::vector<std::string>& lines);

  // Drops the cached control channel to one machine (e.g. after it was
  // recovered into a new process); the next control call reconnects.
  void ResetControlChannel(int machine_id);

 private:
  // Exactly-once completion record shared by the reply path and the
  // watchdog; whichever gets there first consumes the handler.
  struct CallState {
    // Guards the exactly-once consumption; the metadata below is written
    // before the state is shared and read-only afterwards.
    platform::Mutex mu{"net/MachineClient::CallState::mu"};
    bool done MTDB_GUARDED_BY(mu) = false;
    ResponseHandler handler MTDB_GUARDED_BY(mu);
    int machine_id = -1;
    RpcType type = RpcType::kHealth;
    uint64_t trace_id = 0;
    int64_t start_us = 0;  // send time, for the client-side latency metric
  };

  // Issues the call on `channel` with the deadline armed.
  void CallWithDeadline(Channel* channel, int machine_id,
                        const RpcRequest& request, ResponseHandler handler);
  RpcResponse CallSync(Channel* channel, int machine_id,
                       const RpcRequest& request);
  // Control-plane convenience: sync call on the shared control channel.
  RpcResponse ControlCall(int machine_id, const RpcRequest& request);
  Channel* ControlChannel(int machine_id);

  void WatchdogLoop();
  void OnTimeout(int machine_id);

  Transport* transport_;
  RpcOptions options_;

  platform::Mutex mu_{"net/MachineClient::mu"};
  std::map<int, std::unique_ptr<Channel>> control_channels_
      MTDB_GUARDED_BY(mu_);
  TimeoutListener timeout_listener_ MTDB_GUARDED_BY(mu_);

  platform::Mutex watchdog_mu_{"net/MachineClient::watchdog_mu"};
  platform::CondVar watchdog_cv_;
  std::multimap<std::chrono::steady_clock::time_point,
                std::shared_ptr<CallState>>
      deadlines_ MTDB_GUARDED_BY(watchdog_mu_);
  bool watchdog_stop_ MTDB_GUARDED_BY(watchdog_mu_) = false;
  std::thread watchdog_;
};

}  // namespace mtdb::net

#endif  // MTDB_NET_MACHINE_CLIENT_H_
