#include "src/net/tcp_transport.h"

#include <arpa/inet.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <deque>
#include <utility>

#include "src/common/logging.h"
#include "src/platform/mutex.h"
#include "src/net/codec.h"
#include "src/net/machine_service.h"

namespace mtdb::net {

namespace {

// Writes the whole buffer, retrying on EINTR / short writes.
bool WriteAll(int fd, const char* data, size_t size) {
  while (size > 0) {
    ssize_t n = ::send(fd, data, size, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data += n;
    size -= static_cast<size_t>(n);
  }
  return true;
}

// Reads one length-prefixed frame payload into *payload. Returns false on
// EOF or error (connection is finished either way).
bool ReadFrame(int fd, std::string* payload) {
  char header[4];
  size_t have = 0;
  while (have < sizeof(header)) {
    ssize_t n = ::recv(fd, header + have, sizeof(header) - have, 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) return false;
    have += static_cast<size_t>(n);
  }
  uint32_t length = 0;
  for (int i = 0; i < 4; ++i) {
    length |= static_cast<uint32_t>(static_cast<uint8_t>(header[i])) << (8 * i);
  }
  if (length > kMaxFrameBytes) return false;
  payload->resize(length);
  size_t off = 0;
  while (off < length) {
    ssize_t n = ::recv(fd, payload->data() + off, length - off, 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) return false;
    off += static_cast<size_t>(n);
  }
  return true;
}

int ConnectTo(const std::string& host, uint16_t port) {
  struct addrinfo hints;
  std::memset(&hints, 0, sizeof(hints));
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  struct addrinfo* result = nullptr;
  std::string port_str = std::to_string(port);
  if (::getaddrinfo(host.c_str(), port_str.c_str(), &hints, &result) != 0) {
    return -1;
  }
  int fd = -1;
  for (struct addrinfo* ai = result; ai != nullptr; ai = ai->ai_next) {
    fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) continue;
    if (::connect(fd, ai->ai_addr, ai->ai_addrlen) == 0) break;
    ::close(fd);
    fd = -1;
  }
  ::freeaddrinfo(result);
  if (fd >= 0) {
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  }
  return fd;
}

}  // namespace

// --- TcpServer ---

TcpServer::TcpServer(MachineService* service) : service_(service) {}

TcpServer::~TcpServer() { Stop(); }

Status TcpServer::Start(uint16_t port) {
  int listen_fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd < 0) {
    return Status::Internal(std::string("socket: ") + std::strerror(errno));
  }
  int one = 1;
  ::setsockopt(listen_fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_ANY);
  addr.sin_port = htons(port);
  if (::bind(listen_fd, reinterpret_cast<struct sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    Status status =
        Status::Internal(std::string("bind: ") + std::strerror(errno));
    ::close(listen_fd);
    return status;
  }
  if (::listen(listen_fd, 64) != 0) {
    Status status =
        Status::Internal(std::string("listen: ") + std::strerror(errno));
    ::close(listen_fd);
    return status;
  }
  socklen_t addr_len = sizeof(addr);
  if (::getsockname(listen_fd, reinterpret_cast<struct sockaddr*>(&addr),
                    &addr_len) == 0) {
    port_ = ntohs(addr.sin_port);
  } else {
    port_ = port;
  }
  listen_fd_.store(listen_fd);
  stopping_.store(false);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

void TcpServer::Stop() {
  if (stopping_.exchange(true)) {
    if (accept_thread_.joinable()) accept_thread_.join();
    return;
  }
  // Wake the accept loop (on Linux, shutdown on a listening socket makes a
  // blocked accept return), join it, and only then close the fd — so no
  // thread can race the close or touch a recycled descriptor.
  int listen_fd = listen_fd_.load();
  if (listen_fd >= 0) ::shutdown(listen_fd, SHUT_RDWR);
  if (accept_thread_.joinable()) accept_thread_.join();
  if (listen_fd >= 0) {
    ::close(listen_fd);
    listen_fd_.store(-1);
  }
  std::vector<std::thread> threads;
  {
    platform::Guard lock(mu_);
    for (int fd : connection_fds_) ::shutdown(fd, SHUT_RDWR);
    threads.swap(connection_threads_);
  }
  for (auto& t : threads) t.join();
}

void TcpServer::AcceptLoop() {
  while (!stopping_.load()) {
    int fd = ::accept(listen_fd_.load(), nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      break;  // listener closed (Stop) or fatal error
    }
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    platform::Guard lock(mu_);
    if (stopping_.load()) {
      ::close(fd);
      break;
    }
    connection_fds_.push_back(fd);
    connection_threads_.emplace_back([this, fd] { ServeConnection(fd); });
  }
}

void TcpServer::ServeConnection(int fd) {
  // Strictly sequential request/reply: this is what gives each connection
  // (= Channel) its FIFO execution order on the machine.
  std::string payload;
  std::string reply;
  while (ReadFrame(fd, &payload)) {
    RpcResponse response;
    auto request_or = DecodeRequest(payload);
    if (!request_or.ok()) {
      response = RpcResponse::FromStatus(request_or.status());
    } else {
      response = service_->Dispatch(*request_or);
    }
    reply.clear();
    EncodeResponseFrame(response, &reply);
    if (!WriteAll(fd, reply.data(), reply.size())) break;
  }
  ::close(fd);
}

// --- TcpTransport ---

namespace {

// One pipelined client connection. Handlers are queued on write and fired in
// order by the reader thread; the server's sequential reply order makes the
// match-up correct without request ids.
class TcpChannel : public Channel {
 public:
  TcpChannel(int machine_id, int fd) : machine_id_(machine_id), fd_(fd) {
    reader_ = std::thread([this] { ReadLoop(); });
  }

  ~TcpChannel() override {
    {
      platform::Guard lock(mu_);
      dead_ = true;
      if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
    }
    if (reader_.joinable()) reader_.join();
    if (fd_ >= 0) ::close(fd_);
  }

  void Call(const RpcRequest& request, ResponseHandler handler) override {
    std::string frame;
    EncodeRequestFrame(request, &frame);
    {
      platform::Guard lock(mu_);
      if (!dead_) {
        // Handler enqueued under the same lock as the write keeps the FIFO
        // aligned with the byte stream.
        handlers_.push_back(std::move(handler));
        if (WriteAll(fd_, frame.data(), frame.size())) return;
        dead_ = true;
        handler = std::move(handlers_.back());
        handlers_.pop_back();
      }
    }
    handler(RpcResponse::FromStatus(Status::Unavailable(
        "connection to machine " + std::to_string(machine_id_) + " is down")));
  }

 private:
  void ReadLoop() {
    std::string payload;
    while (ReadFrame(fd_, &payload)) {
      ResponseHandler handler;
      {
        platform::Guard lock(mu_);
        if (handlers_.empty()) {
          // Reply with no outstanding request: protocol violation.
          dead_ = true;
          break;
        }
        handler = std::move(handlers_.front());
        handlers_.pop_front();
      }
      auto response_or = DecodeResponse(payload);
      if (response_or.ok()) {
        handler(std::move(*response_or));
      } else {
        handler(RpcResponse::FromStatus(response_or.status()));
      }
    }
    // Socket is finished: fail everything still waiting. Calls racing with
    // the shutdown fail at write time in Call.
    std::deque<ResponseHandler> orphans;
    {
      platform::Guard lock(mu_);
      dead_ = true;
      orphans.swap(handlers_);
    }
    for (auto& orphan : orphans) {
      orphan(RpcResponse::FromStatus(Status::Unavailable(
          "connection to machine " + std::to_string(machine_id_) +
          " lost")));
    }
  }

  int machine_id_;
  int fd_;
  platform::Mutex mu_{"net/TcpChannel::mu"};
  bool dead_ MTDB_GUARDED_BY(mu_) = false;
  std::deque<ResponseHandler> handlers_ MTDB_GUARDED_BY(mu_);
  std::thread reader_;
};

}  // namespace

void TcpTransport::AddEndpoint(int machine_id, const std::string& host,
                               uint16_t port) {
  platform::Guard lock(mu_);
  endpoints_[machine_id] = Endpoint{host, port};
}

std::unique_ptr<Channel> TcpTransport::OpenChannel(int machine_id) {
  Endpoint endpoint;
  {
    platform::Guard lock(mu_);
    auto it = endpoints_.find(machine_id);
    if (it == endpoints_.end()) {
      return std::make_unique<UnreachableChannel>(machine_id);
    }
    endpoint = it->second;
  }
  int fd = ConnectTo(endpoint.host, endpoint.port);
  if (fd < 0) {
    MTDB_LOG(kWarning) << "tcp: cannot connect to machine " << machine_id
                       << " at " << endpoint.host << ":" << endpoint.port;
    return std::make_unique<UnreachableChannel>(machine_id);
  }
  return std::make_unique<TcpChannel>(machine_id, fd);
}

}  // namespace mtdb::net
