#include "src/net/inproc_transport.h"

#include <chrono>
#include <thread>
#include <utility>

#include "src/cluster/strand.h"
#include "src/common/logging.h"
#include "src/net/codec.h"
#include "src/net/machine_service.h"

namespace mtdb::net {

// One in-process "connection": a strand that serializes delivery, dispatch,
// and reply for all calls on this channel. Mirrors a dedicated client
// connection to the machine's DBMS process.
class InProcTransport::InProcChannel : public Channel {
 public:
  InProcChannel(InProcTransport* transport, int machine_id)
      : transport_(transport), machine_id_(machine_id) {}

  ~InProcChannel() override { strand_.Drain(); }

  void Call(const RpcRequest& request, ResponseHandler handler) override {
    // Marshal up front: the bytes are what the fault hook conceptually acts
    // on, and encoding outside the strand keeps the serialized cost on the
    // caller like a real socket write.
    auto frame = std::make_shared<std::string>();
    EncodeRequestFrame(request, frame.get());
    strand_.SubmitDetached([this, frame = std::move(frame),
                            handler = std::move(handler)]() mutable {
      Deliver(*frame, std::move(handler));
    });
  }

 private:
  void Deliver(const std::string& frame, ResponseHandler handler) {
    size_t frame_size = 0;
    Status frame_error;
    auto payload =
        ExtractFrame(frame, &frame_size, &frame_error);
    if (!payload.has_value()) {
      handler(RpcResponse::FromStatus(
          frame_error.ok() ? Status::Internal("inproc: incomplete frame")
                           : frame_error));
      return;
    }
    auto request_or = DecodeRequest(*payload);
    if (!request_or.ok()) {
      handler(RpcResponse::FromStatus(request_or.status()));
      return;
    }
    const RpcRequest& request = *request_or;

    Fault fault = transport_->EvaluateFault(machine_id_, request);
    if (fault == Fault::kDropRequest) {
      MTDB_LOG(kDebug) << "inproc: dropped request " << RpcTypeName(request.type)
                   << " to machine " << machine_id_;
      return;  // the caller's deadline watchdog answers eventually
    }
    int64_t delay_us = transport_->EvaluateLatency(machine_id_, request);
    if (delay_us > 0) {
      std::this_thread::sleep_for(std::chrono::microseconds(delay_us));
    }

    MachineService* service = transport_->Lookup(machine_id_);
    RpcResponse response =
        service == nullptr
            ? RpcResponse::FromStatus(Status::Unavailable(
                  "no machine " + std::to_string(machine_id_) +
                  " attached to inproc transport"))
            : service->Dispatch(request);

    if (fault == Fault::kDropReply) {
      MTDB_LOG(kDebug) << "inproc: dropped reply for " << RpcTypeName(request.type)
                   << " from machine " << machine_id_;
      return;  // executed on the machine, but the coordinator never hears
    }

    // Round-trip the response through the codec too.
    std::string reply_frame;
    EncodeResponseFrame(response, &reply_frame);
    size_t reply_size = 0;
    Status reply_error;
    auto reply_payload = ExtractFrame(reply_frame, &reply_size, &reply_error);
    if (!reply_payload.has_value()) {
      handler(RpcResponse::FromStatus(
          Status::Internal("inproc: bad reply frame")));
      return;
    }
    auto response_or = DecodeResponse(*reply_payload);
    if (!response_or.ok()) {
      handler(RpcResponse::FromStatus(response_or.status()));
      return;
    }
    transport_->delivered_.fetch_add(1, std::memory_order_relaxed);
    handler(std::move(*response_or));
  }

  InProcTransport* transport_;
  int machine_id_;
  Strand strand_;
};

std::unique_ptr<Channel> InProcTransport::OpenChannel(int machine_id) {
  return std::make_unique<InProcChannel>(this, machine_id);
}

void InProcTransport::AttachLocal(int machine_id, MachineService* service) {
  platform::Guard lock(mu_);
  services_[machine_id] = service;
}

void InProcTransport::SetFaultHook(FaultHook hook) {
  platform::Guard lock(mu_);
  fault_hook_ = std::move(hook);
}

void InProcTransport::SetLatencyHook(LatencyHook hook) {
  platform::Guard lock(mu_);
  latency_hook_ = std::move(hook);
}

void InProcTransport::PartitionMachine(int machine_id) {
  platform::Guard lock(mu_);
  partitioned_.insert(machine_id);
}

void InProcTransport::HealMachine(int machine_id) {
  platform::Guard lock(mu_);
  partitioned_.erase(machine_id);
}

MachineService* InProcTransport::Lookup(int machine_id) const {
  platform::Guard lock(mu_);
  auto it = services_.find(machine_id);
  return it == services_.end() ? nullptr : it->second;
}

InProcTransport::Fault InProcTransport::EvaluateFault(
    int machine_id, const RpcRequest& request) const {
  FaultHook hook;
  {
    platform::Guard lock(mu_);
    if (partitioned_.count(machine_id) > 0) return Fault::kDropRequest;
    hook = fault_hook_;
  }
  return hook ? hook(machine_id, request) : Fault::kDeliver;
}

int64_t InProcTransport::EvaluateLatency(int machine_id,
                                         const RpcRequest& request) const {
  LatencyHook hook;
  {
    platform::Guard lock(mu_);
    hook = latency_hook_;
  }
  return hook ? hook(machine_id, request) : 0;
}

}  // namespace mtdb::net
