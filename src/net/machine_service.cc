#include "src/net/machine_service.h"

#include <chrono>
#include <thread>
#include <utility>

#include "src/cluster/machine.h"
#include "src/common/clock.h"
#include "src/net/codec.h"
#include "src/obs/metrics.h"
#include "src/sql/executor.h"
#include "src/sql/parser.h"
#include "src/storage/dump.h"
#include "src/storage/wal/wal.h"

namespace mtdb::net {

namespace {

// Server-side per-type service-time histograms, resolved once.
Histogram* ServerLatencyFor(RpcType type) {
  constexpr int kNumTypes = static_cast<int>(RpcType::kWalDeltaApply) + 1;
  static Histogram** table = [] {
    auto** entries = new Histogram*[kNumTypes]();
    for (int i = 1; i < kNumTypes; ++i) {
      entries[i] = obs::MetricsRegistry::Global().GetHistogram(
          "mtdb_rpc_server_us",
          {.operation = std::string(RpcTypeName(static_cast<RpcType>(i)))});
    }
    return entries;
  }();
  int index = static_cast<int>(type);
  return index > 0 && index < kNumTypes ? table[index] : nullptr;
}

bool IsTransactional(RpcType type) {
  switch (type) {
    case RpcType::kBegin:
    case RpcType::kExecute:
    case RpcType::kExecutePrepared:
    case RpcType::kPrepare:
    case RpcType::kCommit:
    case RpcType::kCommitPrepared:
    case RpcType::kAbort:
      return true;
    default:
      return false;
  }
}

void SleepMicros(int64_t us) {
  if (us > 0) std::this_thread::sleep_for(std::chrono::microseconds(us));
}

}  // namespace

MachineService::MachineService(Machine* machine) : machine_(machine) {}

RpcResponse MachineService::Dispatch(const RpcRequest& request) {
  // The fail-stop model: a failed machine answers nothing but health probes.
  // (The liveness probe must keep answering so monitoring can distinguish
  // "machine declared failed" from "network partition".)
  if (request.type == RpcType::kHealth) {
    return RpcResponse::FromStatus(
        machine_->failed() ? Status::Unavailable("machine failed")
                           : Status::OK());
  }
  // Stats stay readable on failed machines too: post-mortem counters are
  // exactly what an operator wants from a dead machine.
  if (request.type == RpcType::kStats) {
    RpcResponse response;
    response.message = obs::MetricsRegistry::Global().TextDump();
    return response;
  }
  if (machine_->failed()) {
    return RpcResponse::FromStatus(Status::Unavailable("machine failed"));
  }
  int64_t start_us = NowMicros();
  RpcResponse response = IsTransactional(request.type)
                             ? DispatchTransactional(request)
                             : DispatchControl(request);
  int64_t elapsed_us = NowMicros() - start_us;
  response.server_duration_us = elapsed_us;
  obs::Observe(ServerLatencyFor(request.type), elapsed_us);
  return response;
}

RpcResponse MachineService::DispatchTransactional(const RpcRequest& request) {
  auto engine = machine_->engine();
  switch (request.type) {
    case RpcType::kBegin: {
      // QoS admission gates the transaction here, before any engine state
      // exists: an over-quota tenant or a shedding machine answers with a
      // fast kResourceExhausted + retry_after_us instead of queueing work.
      // Everything after Begin (executes, 2PC completions) belongs to an
      // already-admitted transaction and is never throttled, so a quota can
      // never cut a replicated write off on a subset of replicas.
      qos::AdmitDecision decision = machine_->AdmitBegin(request.db_name);
      if (!decision.admitted) {
        RpcResponse response = RpcResponse::FromStatus(
            Status::ResourceExhausted(
                machine_->shedding() ? "machine overloaded, shedding load"
                                     : "tenant over admission quota"));
        response.retry_after_us = decision.retry_after_us;
        return response;
      }
      uint64_t snapshot_ts = 0;
      RpcResponse response = RpcResponse::FromStatus(
          engine->Begin(request.txn_id, request.read_only, &snapshot_ts));
      response.snapshot_ts = snapshot_ts;
      return response;
    }
    case RpcType::kExecute: {
      // Parse+plan (or plan-cache hit) happens before the latency model so
      // cached statements skip straight to the op slot.
      auto plan_or = engine->GetPlan(request.db_name, request.sql);
      if (!plan_or.ok()) return RpcResponse::FromStatus(plan_or.status());
      // Test-only injected latency is applied *before* taking an op slot,
      // matching the pre-RPC execution path so Table 1 anomaly schedules
      // stay deterministic.
      SleepMicros(request.debug_delay_us);
      qos::WeightedFairQueue::Guard guard(machine_->fair_queue(),
                                          request.db_name);
      int64_t execute_start_us = NowMicros();
      SleepMicros(machine_->base_op_latency_us());
      sql::SqlExecutor executor(engine.get());
      auto result = executor.ExecutePlan(request.txn_id, request.db_name,
                                         **plan_or, request.params);
      machine_->RecordExecuteLatency(NowMicros() - execute_start_us);
      if (!result.ok()) return RpcResponse::FromStatus(result.status());
      RpcResponse response;
      response.result = std::move(*result);
      return response;
    }
    case RpcType::kExecutePrepared: {
      SleepMicros(request.debug_delay_us);
      qos::WeightedFairQueue::Guard guard(machine_->fair_queue(),
                                          request.db_name);
      int64_t execute_start_us = NowMicros();
      SleepMicros(machine_->base_op_latency_us());
      auto result = engine->ExecutePrepared(request.txn_id,
                                            request.stmt_handle,
                                            request.params);
      machine_->RecordExecuteLatency(NowMicros() - execute_start_us);
      if (!result.ok()) return RpcResponse::FromStatus(result.status());
      RpcResponse response;
      response.result = std::move(*result);
      return response;
    }
    case RpcType::kPrepare:
      return RpcResponse::FromStatus(engine->Prepare(request.txn_id));
    case RpcType::kCommit:
      return RpcResponse::FromStatus(engine->Commit(request.txn_id));
    case RpcType::kCommitPrepared:
      return RpcResponse::FromStatus(engine->CommitPrepared(request.txn_id));
    case RpcType::kAbort:
      return RpcResponse::FromStatus(engine->Abort(request.txn_id));
    default:
      return RpcResponse::FromStatus(Status::Internal(
          "non-transactional request in transactional dispatch"));
  }
}

RpcResponse MachineService::DispatchControl(const RpcRequest& request) {
  auto engine = machine_->engine();
  switch (request.type) {
    case RpcType::kCreateDatabase:
      return RpcResponse::FromStatus(engine->CreateDatabase(request.db_name));
    case RpcType::kDropDatabase:
      return RpcResponse::FromStatus(engine->DropDatabase(request.db_name));
    case RpcType::kHasDatabase:
      return RpcResponse::FromStatus(
          engine->HasDatabase(request.db_name)
              ? Status::OK()
              : Status::NotFound("no database " + request.db_name));
    case RpcType::kExecuteDdl: {
      auto stmt_or = sql::Parse(request.sql);
      if (!stmt_or.ok()) return RpcResponse::FromStatus(stmt_or.status());
      sql::SqlExecutor executor(engine.get());
      auto result = executor.Execute(/*txn_id=*/0, request.db_name, *stmt_or);
      if (!result.ok()) return RpcResponse::FromStatus(result.status());
      RpcResponse response;
      response.result = std::move(*result);
      return response;
    }
    case RpcType::kPrepareStatement: {
      auto handle_or = engine->PrepareStatement(request.db_name, request.sql);
      if (!handle_or.ok()) return RpcResponse::FromStatus(handle_or.status());
      RpcResponse response;
      response.stmt_handle = *handle_or;
      return response;
    }
    case RpcType::kBulkLoad:
      return RpcResponse::FromStatus(
          engine->BulkInsert(request.db_name, request.table, request.rows));
    case RpcType::kDumpTable: {
      DumpOptions options;
      options.per_row_delay_us = request.per_row_delay_us;
      auto dump_or = DumpTable(engine.get(), request.db_name, request.table,
                               request.txn_id, options);
      if (!dump_or.ok()) return RpcResponse::FromStatus(dump_or.status());
      RpcResponse response;
      response.dumps.push_back(std::move(*dump_or));
      return response;
    }
    case RpcType::kDumpDatabase: {
      DumpOptions options;
      options.per_row_delay_us = request.per_row_delay_us;
      auto dump_or = DumpDatabaseCoarse(engine.get(), request.db_name,
                                        request.txn_id, options);
      if (!dump_or.ok()) return RpcResponse::FromStatus(dump_or.status());
      RpcResponse response;
      response.dumps = std::move(dump_or->tables);
      return response;
    }
    case RpcType::kApplyDump:
      return RpcResponse::FromStatus(
          ApplyTableDump(engine.get(), request.db_name, request.dump));
    case RpcType::kListPrepared: {
      RpcResponse response;
      response.txn_ids = engine->PreparedTxnIds();
      return response;
    }
    case RpcType::kListActive: {
      RpcResponse response;
      response.txn_ids = engine->ActiveTxnIds();
      return response;
    }
    case RpcType::kSetQuota: {
      // Quota triple rides the params vector:
      // [rate_tps (double), burst (double), weight (int)].
      if (request.params.size() != 3 || !request.params[0].is_numeric() ||
          !request.params[1].is_numeric() || !request.params[2].is_numeric()) {
        return RpcResponse::FromStatus(
            Status::InvalidArgument("malformed quota params"));
      }
      qos::QuotaSpec spec;
      spec.rate_tps = request.params[0].AsDouble();
      spec.burst = request.params[1].AsDouble();
      spec.weight = static_cast<int>(request.params[2].is_int()
                                         ? request.params[2].AsInt()
                                         : request.params[2].AsDouble());
      machine_->SetQuota(request.db_name, spec);
      return RpcResponse();
    }
    case RpcType::kWalDeltaRead: {
      WriteAheadLog* log = engine->wal();
      if (log == nullptr) {
        // Doubles as the migrator's capability probe: a WAL-less source
        // cannot serve deltas, so the migration falls back to frozen copy.
        return RpcResponse::FromStatus(
            Status::FailedPrecondition("source machine has no WAL"));
      }
      // Push enqueued records to the file so the frontier covers them.
      Status sync_status = log->Sync();
      if (!sync_status.ok()) return RpcResponse::FromStatus(sync_status);
      uint64_t frontier = 0;
      if (request.wal_cursor == UINT64_MAX) {
        // Probe round: frontier only, no lines.
        auto probe_or = WriteAheadLog::ReadCommittedDeltaSince(
            log->path(), request.db_name, UINT64_MAX, &frontier);
        if (!probe_or.ok()) return RpcResponse::FromStatus(probe_or.status());
        RpcResponse response;
        response.wal_lsn = frontier;
        return response;
      }
      auto lines_or = WriteAheadLog::ReadCommittedDeltaSince(
          log->path(), request.db_name, request.wal_cursor, &frontier);
      if (!lines_or.ok()) return RpcResponse::FromStatus(lines_or.status());
      RpcResponse response;
      response.names = std::move(*lines_or);
      response.wal_lsn = frontier;
      return response;
    }
    case RpcType::kWalDeltaApply: {
      std::vector<WalRecord> records =
          WriteAheadLog::ParseDeltaLines(request.lines);
      for (const WalRecord& record : records) {
        Status status = Status::OK();
        switch (record.type) {
          case WalRecordType::kCreateDatabase:
            status = engine->CreateDatabase(record.database);
            break;
          case WalRecordType::kCreateTable: {
            auto schema_or = WriteAheadLog::DecodeSchema(record.aux);
            if (!schema_or.ok()) {
              status = schema_or.status();
              break;
            }
            status = engine->CreateTable(record.database, *schema_or);
            break;
          }
          case WalRecordType::kCreateIndex: {
            // aux is "<index>:<column>", the AppendDdl encoding.
            size_t colon = record.aux.find(':');
            if (colon == std::string::npos) break;
            status = engine->CreateIndex(record.database, record.table,
                                         record.aux.substr(0, colon),
                                         record.aux.substr(colon + 1));
            break;
          }
          case WalRecordType::kInsert:
          case WalRecordType::kUpdate:
          case WalRecordType::kDelete:
            status = engine->ApplyRedoRow(record.database, record.table,
                                          record.type, record.primary_key,
                                          record.row);
            break;
          default:
            break;
        }
        // The bulk copy may already include this DDL: re-applying is fine.
        if (!status.ok() && status.code() != StatusCode::kAlreadyExists) {
          return RpcResponse::FromStatus(status);
        }
      }
      return RpcResponse();
    }
    case RpcType::kListTables: {
      Database* db = engine->GetDatabase(request.db_name);
      if (db == nullptr) {
        return RpcResponse::FromStatus(
            Status::NotFound("no database " + request.db_name));
      }
      RpcResponse response;
      response.names = db->TableNames();
      return response;
    }
    default:
      return RpcResponse::FromStatus(Status::InvalidArgument(
          "unhandled rpc type " +
          std::to_string(static_cast<int>(request.type))));
  }
}

}  // namespace mtdb::net
