#ifndef MTDB_WORKLOAD_DRIVER_H_
#define MTDB_WORKLOAD_DRIVER_H_

#include <string>
#include <vector>

#include "src/cluster/cluster_controller.h"
#include "src/common/histogram.h"
#include "src/workload/tpcw.h"

namespace mtdb::workload {

struct DriverOptions {
  TpcwMix mix = TpcwMix::kShopping;
  // Concurrent client sessions per database (each gets its own connection
  // and thread).
  int sessions = 4;
  int64_t duration_ms = 1000;
  uint64_t seed = 7;
  // Run read-only interactions as MVCC snapshot transactions (writes keep
  // strict 2PL) — the third isolation ablation point.
  bool snapshot_reads = false;
};

// Aggregated outcome of one workload run.
struct WorkloadStats {
  int64_t committed = 0;
  int64_t aborted = 0;          // all aborted transactions
  int64_t deadlock_aborts = 0;  // subset: deadlock victims
  int64_t timeout_aborts = 0;   // subset: lock-wait timeouts
  int64_t rejected = 0;         // proactively rejected (copy windows)
  int64_t unavailable = 0;
  double elapsed_seconds = 0;
  Histogram latency_us;
  int64_t write_committed = 0;

  double Tps() const {
    return elapsed_seconds > 0 ? committed / elapsed_seconds : 0;
  }
  double DeadlockRate() const {
    return elapsed_seconds > 0 ? deadlock_aborts / elapsed_seconds : 0;
  }
  void Merge(const WorkloadStats& other);
};

// Drives `sessions` concurrent TPC-W client sessions against one database
// until the duration elapses. Each session loops: draw an interaction from
// the mix, run it as one transaction, record the outcome.
WorkloadStats RunTpcwWorkload(ClusterController* controller,
                              const std::string& db_name,
                              const TpcwScale& scale,
                              const DriverOptions& options);

// Same, but across several databases simultaneously (each database gets
// `options.sessions` sessions). Returns combined stats; per-database stats
// are returned through `per_db` when non-null.
WorkloadStats RunMultiTenantWorkload(
    ClusterController* controller, const std::vector<std::string>& db_names,
    const TpcwScale& scale, const DriverOptions& options,
    std::vector<WorkloadStats>* per_db = nullptr);

}  // namespace mtdb::workload

#endif  // MTDB_WORKLOAD_DRIVER_H_
