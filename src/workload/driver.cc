#include "src/workload/driver.h"

#include <thread>

#include "src/common/clock.h"

namespace mtdb::workload {

void WorkloadStats::Merge(const WorkloadStats& other) {
  committed += other.committed;
  aborted += other.aborted;
  deadlock_aborts += other.deadlock_aborts;
  timeout_aborts += other.timeout_aborts;
  rejected += other.rejected;
  unavailable += other.unavailable;
  write_committed += other.write_committed;
  elapsed_seconds = std::max(elapsed_seconds, other.elapsed_seconds);
  latency_us.Merge(other.latency_us);
}

namespace {

void ClassifyFailure(const Status& status, WorkloadStats* stats) {
  stats->aborted++;
  // Poisoned transactions surface as kAborted with the root cause in the
  // message; match on both the raw and wrapped forms.
  const std::string& message = status.message();
  auto contains = [&message](const char* needle) {
    return message.find(needle) != std::string::npos;
  };
  if (status.code() == StatusCode::kDeadlock || contains("Deadlock")) {
    stats->deadlock_aborts++;
    return;
  }
  if (status.code() == StatusCode::kLockTimeout || contains("LockTimeout")) {
    stats->timeout_aborts++;
    return;
  }
  if (status.code() == StatusCode::kRejected || contains("Rejected")) {
    stats->rejected++;
    return;
  }
  if (status.code() == StatusCode::kUnavailable || contains("Unavailable")) {
    stats->unavailable++;
    return;
  }
}

WorkloadStats RunSession(ClusterController* controller,
                         const std::string& db_name, const TpcwScale& scale,
                         const DriverOptions& options, uint64_t session_seed) {
  WorkloadStats stats;
  Random rng(session_seed);
  auto conn = controller->Connect(db_name);
  // Prepare the fixed statement set once per session; every interaction then
  // ships (handle, params) over the wire instead of SQL text.
  auto stmts_or = PrepareTpcwStatements(conn.get());
  if (!stmts_or.ok()) {
    ClassifyFailure(stmts_or.status(), &stats);
    return stats;
  }
  const TpcwStatements& stmts = *stmts_or;
  Stopwatch watch;
  while (watch.ElapsedMicros() < options.duration_ms * 1000) {
    Interaction interaction = DrawInteraction(options.mix, &rng);
    Stopwatch txn_watch;
    InteractionResult result = RunInteraction(
        conn.get(), stmts, interaction, scale, &rng, options.snapshot_reads);
    if (result.status.ok()) {
      stats.committed++;
      if (result.was_write) stats.write_committed++;
      stats.latency_us.Record(txn_watch.ElapsedMicros());
    } else {
      ClassifyFailure(result.status, &stats);
    }
  }
  stats.elapsed_seconds = watch.ElapsedSeconds();
  return stats;
}

}  // namespace

WorkloadStats RunTpcwWorkload(ClusterController* controller,
                              const std::string& db_name,
                              const TpcwScale& scale,
                              const DriverOptions& options) {
  std::vector<WorkloadStats> session_stats(options.sessions);
  std::vector<std::thread> threads;
  for (int s = 0; s < options.sessions; ++s) {
    threads.emplace_back([&, s] {
      session_stats[s] =
          RunSession(controller, db_name, scale, options,
                     options.seed * 7919 + static_cast<uint64_t>(s) + 1);
    });
  }
  for (auto& t : threads) t.join();
  WorkloadStats total;
  for (const WorkloadStats& s : session_stats) total.Merge(s);
  return total;
}

WorkloadStats RunMultiTenantWorkload(
    ClusterController* controller, const std::vector<std::string>& db_names,
    const TpcwScale& scale, const DriverOptions& options,
    std::vector<WorkloadStats>* per_db) {
  std::vector<WorkloadStats> db_stats(db_names.size());
  std::vector<std::thread> threads;
  for (size_t d = 0; d < db_names.size(); ++d) {
    threads.emplace_back([&, d] {
      DriverOptions tenant_options = options;
      tenant_options.seed = options.seed + d * 1009;
      db_stats[d] =
          RunTpcwWorkload(controller, db_names[d], scale, tenant_options);
    });
  }
  for (auto& t : threads) t.join();
  WorkloadStats total;
  for (const WorkloadStats& s : db_stats) total.Merge(s);
  if (per_db != nullptr) *per_db = db_stats;
  return total;
}

}  // namespace mtdb::workload
