#include "src/workload/tpcw.h"

#include <algorithm>

namespace mtdb::workload {

namespace {

const char* kSubjects[] = {"ARTS", "BIOGRAPHIES", "BUSINESS", "CHILDREN",
                           "COMPUTERS", "COOKING", "HEALTH", "HISTORY",
                           "HOME", "HUMOR", "LITERATURE", "MYSTERY",
                           "NON-FICTION", "PARENTING", "POLITICS",
                           "REFERENCE", "RELIGION", "ROMANCE",
                           "SELF-HELP", "SCIENCE-NATURE", "SCIENCE-FICTION",
                           "SPORTS", "YOUTH", "TRAVEL"};
constexpr int kNumSubjects = 24;

std::string Subject(Random* rng) {
  return kSubjects[rng->Uniform(kNumSubjects)];
}

}  // namespace

Status CreateTpcwSchema(ClusterController* controller,
                        const std::string& db_name) {
  static const char* kDdl[] = {
      "CREATE TABLE country (co_id INT PRIMARY KEY, co_name VARCHAR(50))",
      "CREATE TABLE address (addr_id INT PRIMARY KEY, "
      "addr_street VARCHAR(40), addr_city VARCHAR(30), addr_co_id INT)",
      "CREATE TABLE customer (c_id INT PRIMARY KEY, c_uname VARCHAR(20), "
      "c_passwd VARCHAR(20), c_fname VARCHAR(17), c_lname VARCHAR(17), "
      "c_addr_id INT, c_balance DOUBLE, c_ytd_pmt DOUBLE)",
      "CREATE INDEX idx_c_uname ON customer (c_uname)",
      "CREATE TABLE author (a_id INT PRIMARY KEY, a_fname VARCHAR(20), "
      "a_lname VARCHAR(20))",
      "CREATE TABLE item (i_id INT PRIMARY KEY, i_title VARCHAR(60), "
      "i_a_id INT, i_subject VARCHAR(20), i_cost DOUBLE, i_stock INT, "
      "i_pub_date INT, i_total_sold INT)",
      "CREATE INDEX idx_i_subject ON item (i_subject)",
      "CREATE INDEX idx_i_a_id ON item (i_a_id)",
      "CREATE TABLE orders (o_id INT PRIMARY KEY, o_c_id INT, o_date INT, "
      "o_total DOUBLE, o_status VARCHAR(16))",
      "CREATE INDEX idx_o_c_id ON orders (o_c_id)",
      "CREATE TABLE order_line (ol_id INT PRIMARY KEY, ol_o_id INT, "
      "ol_i_id INT, ol_qty INT, ol_discount DOUBLE)",
      "CREATE INDEX idx_ol_o_id ON order_line (ol_o_id)",
      "CREATE TABLE cc_xacts (cx_o_id INT PRIMARY KEY, cx_type VARCHAR(10), "
      "cx_amount DOUBLE, cx_auth_date INT)",
      "CREATE TABLE shopping_cart (sc_id INT PRIMARY KEY, sc_date INT, "
      "sc_total DOUBLE)",
      "CREATE TABLE shopping_cart_line (scl_id INT PRIMARY KEY, "
      "scl_sc_id INT, scl_i_id INT, scl_qty INT)",
      "CREATE INDEX idx_scl_sc_id ON shopping_cart_line (scl_sc_id)",
  };
  for (const char* ddl : kDdl) {
    MTDB_RETURN_IF_ERROR(controller->ExecuteDdl(db_name, ddl));
  }
  return Status::OK();
}

Status LoadTpcwData(ClusterController* controller, const std::string& db_name,
                    const TpcwScale& scale) {
  Random rng(scale.seed);

  std::vector<Row> countries;
  for (int64_t i = 0; i < 10; ++i) {
    countries.push_back({Value(i), Value("country_" + std::to_string(i))});
  }
  MTDB_RETURN_IF_ERROR(controller->BulkLoad(db_name, "country", countries));

  std::vector<Row> addresses;
  for (int64_t i = 0; i < scale.addresses(); ++i) {
    addresses.push_back({Value(i), Value(rng.AlphaString(16)),
                         Value(rng.AlphaString(10)),
                         Value(static_cast<int64_t>(rng.Uniform(10)))});
  }
  MTDB_RETURN_IF_ERROR(controller->BulkLoad(db_name, "address", addresses));

  std::vector<Row> customers;
  for (int64_t i = 0; i < scale.customers; ++i) {
    customers.push_back({Value(i), Value("user" + std::to_string(i)),
                         Value(rng.AlphaString(8)), Value(rng.AlphaString(8)),
                         Value(rng.AlphaString(10)),
                         Value(static_cast<int64_t>(
                             rng.Uniform(scale.addresses()))),
                         Value(0.0), Value(0.0)});
  }
  MTDB_RETURN_IF_ERROR(controller->BulkLoad(db_name, "customer", customers));

  std::vector<Row> authors;
  for (int64_t i = 0; i < scale.authors(); ++i) {
    authors.push_back(
        {Value(i), Value(rng.AlphaString(8)), Value(rng.AlphaString(10))});
  }
  MTDB_RETURN_IF_ERROR(controller->BulkLoad(db_name, "author", authors));

  std::vector<Row> items;
  for (int64_t i = 0; i < scale.items; ++i) {
    items.push_back({Value(i), Value("title_" + rng.AlphaString(12)),
                     Value(static_cast<int64_t>(rng.Uniform(scale.authors()))),
                     Value(std::string(kSubjects[rng.Uniform(kNumSubjects)])),
                     Value(1.0 + static_cast<double>(rng.Uniform(9900)) / 100),
                     Value(static_cast<int64_t>(10 + rng.Uniform(90))),
                     Value(static_cast<int64_t>(rng.Uniform(3650))),
                     Value(int64_t{0})});
  }
  MTDB_RETURN_IF_ERROR(controller->BulkLoad(db_name, "item", items));

  std::vector<Row> orders;
  std::vector<Row> order_lines;
  std::vector<Row> cc;
  int64_t ol_id = 0;
  for (int64_t o = 0; o < scale.initial_orders; ++o) {
    int64_t customer = static_cast<int64_t>(rng.Uniform(scale.customers));
    int64_t lines = 1 + static_cast<int64_t>(rng.Uniform(4));
    double total = 0;
    for (int64_t l = 0; l < lines; ++l) {
      int64_t item = static_cast<int64_t>(rng.Uniform(scale.items));
      int64_t qty = 1 + static_cast<int64_t>(rng.Uniform(5));
      total += static_cast<double>(qty) * 10.0;
      order_lines.push_back({Value(ol_id++), Value(o), Value(item),
                             Value(qty), Value(0.0)});
    }
    orders.push_back({Value(o), Value(customer),
                      Value(static_cast<int64_t>(rng.Uniform(365))),
                      Value(total), Value("SHIPPED")});
    cc.push_back({Value(o), Value("VISA"), Value(total),
                  Value(static_cast<int64_t>(rng.Uniform(365)))});
  }
  MTDB_RETURN_IF_ERROR(controller->BulkLoad(db_name, "orders", orders));
  MTDB_RETURN_IF_ERROR(
      controller->BulkLoad(db_name, "order_line", order_lines));
  MTDB_RETURN_IF_ERROR(controller->BulkLoad(db_name, "cc_xacts", cc));
  return Status::OK();
}

std::string_view TpcwMixName(TpcwMix mix) {
  switch (mix) {
    case TpcwMix::kBrowsing:
      return "browsing";
    case TpcwMix::kShopping:
      return "shopping";
    case TpcwMix::kOrdering:
      return "ordering";
  }
  return "?";
}

bool IsWriteInteraction(Interaction interaction) {
  switch (interaction) {
    case Interaction::kShoppingCartAdd:
    case Interaction::kBuyConfirm:
    case Interaction::kAdminUpdate:
      return true;
    default:
      return false;
  }
}

Interaction DrawInteraction(TpcwMix mix, Random* rng) {
  // Browse-side and order-side interaction pools; the mix picks the side
  // with the TPC-W browse/order split (95/5, 80/20, 50/50).
  double order_fraction = 0.05;
  if (mix == TpcwMix::kShopping) order_fraction = 0.20;
  if (mix == TpcwMix::kOrdering) order_fraction = 0.50;

  if (rng->Bernoulli(order_fraction)) {
    static const Interaction kOrderSide[] = {
        Interaction::kShoppingCartAdd, Interaction::kBuyConfirm,
        Interaction::kAdminUpdate, Interaction::kOrderInquiry};
    // Weight BuyConfirm and cart updates heavier than admin updates.
    uint64_t roll = rng->Uniform(10);
    if (roll < 4) return kOrderSide[0];
    if (roll < 8) return kOrderSide[1];
    if (roll < 9) return kOrderSide[2];
    return kOrderSide[3];
  }
  static const Interaction kBrowseSide[] = {
      Interaction::kHome,          Interaction::kNewProducts,
      Interaction::kBestSellers,   Interaction::kProductDetail,
      Interaction::kSearchBySubject, Interaction::kSearchByTitle};
  uint64_t roll = rng->Uniform(100);
  if (roll < 30) return kBrowseSide[0];
  if (roll < 40) return kBrowseSide[1];
  if (roll < 45) return kBrowseSide[2];
  if (roll < 75) return kBrowseSide[3];
  if (roll < 90) return kBrowseSide[4];
  return kBrowseSide[5];
}

Result<TpcwStatements> PrepareTpcwStatements(Connection* conn) {
  TpcwStatements s;
  struct Entry {
    std::shared_ptr<PreparedStatement>* slot;
    const char* sql;
  };
  const Entry kEntries[] = {
      {&s.home_customer,
       "SELECT c_fname, c_lname FROM customer WHERE c_id = ?"},
      {&s.home_item, "SELECT i_title, i_cost FROM item WHERE i_id = ?"},
      {&s.new_products,
       "SELECT i_id, i_title, i_pub_date FROM item WHERE i_subject = ? "
       "ORDER BY i_pub_date DESC LIMIT 20"},
      {&s.best_sellers,
       "SELECT ol_i_id, SUM(ol_qty) AS sold FROM order_line WHERE ol_id < ? "
       "GROUP BY ol_i_id ORDER BY sold DESC LIMIT 10"},
      {&s.product_detail,
       "SELECT i.i_title, i.i_cost, i.i_stock, a.a_fname, a.a_lname "
       "FROM item i JOIN author a ON i.i_a_id = a.a_id WHERE i.i_id = ?"},
      {&s.search_subject,
       "SELECT i_id, i_title FROM item WHERE i_subject = ? "
       "ORDER BY i_title LIMIT 50"},
      {&s.search_title,
       "SELECT i_id, i_title FROM item WHERE i_title LIKE ? LIMIT 50"},
      {&s.cart_get, "SELECT sc_id FROM shopping_cart WHERE sc_id = ?"},
      {&s.cart_insert, "INSERT INTO shopping_cart VALUES (?, 0, 0.0)"},
      {&s.cart_line_get,
       "SELECT scl_qty FROM shopping_cart_line WHERE scl_id = ?"},
      {&s.cart_line_insert,
       "INSERT INTO shopping_cart_line VALUES (?, ?, ?, 1)"},
      {&s.cart_line_update,
       "UPDATE shopping_cart_line SET scl_qty = scl_qty + 1 "
       "WHERE scl_id = ?"},
      {&s.buy_stock, "SELECT i_stock, i_cost FROM item WHERE i_id = ?"},
      {&s.buy_update_item,
       "UPDATE item SET i_stock = i_stock - ? + (i_stock < 10) * 21, "
       "i_total_sold = i_total_sold + ? WHERE i_id = ?"},
      {&s.buy_insert_line,
       "INSERT INTO order_line VALUES (?, ?, ?, ?, 0.0)"},
      {&s.buy_insert_order,
       "INSERT INTO orders VALUES (?, ?, 0, ?, 'PENDING')"},
      {&s.buy_insert_cc, "INSERT INTO cc_xacts VALUES (?, 'VISA', ?, 0)"},
      {&s.buy_update_customer,
       "UPDATE customer SET c_balance = c_balance + ?, "
       "c_ytd_pmt = c_ytd_pmt + ? WHERE c_id = ?"},
      {&s.order_last,
       "SELECT o_id, o_total, o_status FROM orders WHERE o_c_id = ? "
       "ORDER BY o_id DESC LIMIT 1"},
      {&s.order_lines,
       "SELECT ol_i_id, ol_qty FROM order_line WHERE ol_o_id = ?"},
      {&s.admin_update,
       "UPDATE item SET i_cost = i_cost * 1.01, i_pub_date = i_pub_date + 1 "
       "WHERE i_id = ?"},
  };
  for (const Entry& entry : kEntries) {
    MTDB_ASSIGN_OR_RETURN(*entry.slot, conn->Prepare(entry.sql));
  }
  return s;
}

namespace {

// Helpers returning Status; the transaction wrapper handles abort. Every
// statement is a prepared handle: the plan is cached engine-side and the
// wire carries (handle, params), not SQL text.

Status Home(Connection* conn, const TpcwStatements& stmts,
            const TpcwScale& scale, Random* rng) {
  int64_t customer = static_cast<int64_t>(rng->Uniform(scale.customers));
  MTDB_RETURN_IF_ERROR(
      conn->ExecutePrepared(stmts.home_customer, {Value(customer)}).status());
  // Promotional items.
  for (int i = 0; i < 5; ++i) {
    int64_t item = static_cast<int64_t>(rng->Uniform(scale.items));
    MTDB_RETURN_IF_ERROR(
        conn->ExecutePrepared(stmts.home_item, {Value(item)}).status());
  }
  return Status::OK();
}

Status NewProducts(Connection* conn, const TpcwStatements& stmts,
                   Random* rng) {
  MTDB_RETURN_IF_ERROR(
      conn->ExecutePrepared(stmts.new_products, {Value(Subject(rng))})
          .status());
  return Status::OK();
}

Status BestSellers(Connection* conn, const TpcwStatements& stmts,
                   const TpcwScale& scale) {
  // Restrict to a bounded window of order lines (as TPC-W restricts best
  // sellers to the last 3333 orders) via a PK range on order_line, so the
  // scan cost does not grow with the run.
  int64_t window = std::max<int64_t>(scale.initial_orders * 3, 150);
  MTDB_RETURN_IF_ERROR(
      conn->ExecutePrepared(stmts.best_sellers, {Value(window)}).status());
  return Status::OK();
}

Status ProductDetail(Connection* conn, const TpcwStatements& stmts,
                     const TpcwScale& scale, Random* rng) {
  int64_t item = static_cast<int64_t>(rng->Uniform(scale.items));
  MTDB_RETURN_IF_ERROR(
      conn->ExecutePrepared(stmts.product_detail, {Value(item)}).status());
  return Status::OK();
}

Status SearchBySubject(Connection* conn, const TpcwStatements& stmts,
                       Random* rng) {
  MTDB_RETURN_IF_ERROR(
      conn->ExecutePrepared(stmts.search_subject, {Value(Subject(rng))})
          .status());
  return Status::OK();
}

Status SearchByTitle(Connection* conn, const TpcwStatements& stmts,
                     Random* rng) {
  std::string prefix =
      std::string("title_") + static_cast<char>('a' + rng->Uniform(26));
  MTDB_RETURN_IF_ERROR(
      conn->ExecutePrepared(stmts.search_title, {Value(prefix + "%")})
          .status());
  return Status::OK();
}

Status ShoppingCartAdd(Connection* conn, const TpcwStatements& stmts,
                       const TpcwScale& scale, Random* rng) {
  // Create or reuse a cart keyed by a random id, then add a line.
  int64_t cart = static_cast<int64_t>(rng->Uniform(scale.customers * 4));
  auto existing = conn->ExecutePrepared(stmts.cart_get, {Value(cart)});
  MTDB_RETURN_IF_ERROR(existing.status());
  if (existing->rows.empty()) {
    MTDB_RETURN_IF_ERROR(
        conn->ExecutePrepared(stmts.cart_insert, {Value(cart)}).status());
  }
  int64_t item = static_cast<int64_t>(rng->Uniform(scale.items));
  int64_t line = cart * 100 + static_cast<int64_t>(rng->Uniform(100));
  auto line_row = conn->ExecutePrepared(stmts.cart_line_get, {Value(line)});
  MTDB_RETURN_IF_ERROR(line_row.status());
  if (line_row->rows.empty()) {
    MTDB_RETURN_IF_ERROR(
        conn->ExecutePrepared(stmts.cart_line_insert,
                              {Value(line), Value(cart), Value(item)})
            .status());
  } else {
    MTDB_RETURN_IF_ERROR(
        conn->ExecutePrepared(stmts.cart_line_update, {Value(line)})
            .status());
  }
  return Status::OK();
}

Status BuyConfirm(Connection* conn, const TpcwStatements& stmts,
                  const TpcwScale& scale, Random* rng) {
  // The heavyweight multi-table write transaction: decrement stock for a
  // few items, create the order with its lines and the credit-card record.
  int64_t customer = static_cast<int64_t>(rng->Uniform(scale.customers));
  int64_t order_id =
      1'000'000 + static_cast<int64_t>(rng->Next() % 1'000'000'000);
  int64_t lines = 1 + static_cast<int64_t>(rng->Uniform(3));
  double total = 0;
  for (int64_t l = 0; l < lines; ++l) {
    int64_t item = static_cast<int64_t>(rng->Uniform(scale.items));
    auto stock = conn->ExecutePrepared(stmts.buy_stock, {Value(item)});
    MTDB_RETURN_IF_ERROR(stock.status());
    if (stock->rows.empty()) continue;
    int64_t qty = 1 + static_cast<int64_t>(rng->Uniform(3));
    total += stock->at(0, 1).AsDouble() * static_cast<double>(qty);
    // Restock when low, as TPC-W's buy-confirm does.
    MTDB_RETURN_IF_ERROR(
        conn->ExecutePrepared(stmts.buy_update_item,
                              {Value(qty), Value(qty), Value(item)})
            .status());
    MTDB_RETURN_IF_ERROR(
        conn->ExecutePrepared(stmts.buy_insert_line,
                              {Value(order_id * 10 + l), Value(order_id),
                               Value(item), Value(qty)})
            .status());
  }
  MTDB_RETURN_IF_ERROR(
      conn->ExecutePrepared(stmts.buy_insert_order,
                            {Value(order_id), Value(customer), Value(total)})
          .status());
  MTDB_RETURN_IF_ERROR(
      conn->ExecutePrepared(stmts.buy_insert_cc,
                            {Value(order_id), Value(total)})
          .status());
  MTDB_RETURN_IF_ERROR(
      conn->ExecutePrepared(stmts.buy_update_customer,
                            {Value(total), Value(total), Value(customer)})
          .status());
  return Status::OK();
}

Status OrderInquiry(Connection* conn, const TpcwStatements& stmts,
                    const TpcwScale& scale, Random* rng) {
  int64_t customer = static_cast<int64_t>(rng->Uniform(scale.customers));
  auto order = conn->ExecutePrepared(stmts.order_last, {Value(customer)});
  MTDB_RETURN_IF_ERROR(order.status());
  if (!order->rows.empty()) {
    MTDB_RETURN_IF_ERROR(
        conn->ExecutePrepared(stmts.order_lines, {order->at(0, 0)}).status());
  }
  return Status::OK();
}

Status AdminUpdate(Connection* conn, const TpcwStatements& stmts,
                   const TpcwScale& scale, Random* rng) {
  int64_t item = static_cast<int64_t>(rng->Uniform(scale.items));
  MTDB_RETURN_IF_ERROR(
      conn->ExecutePrepared(stmts.admin_update, {Value(item)}).status());
  return Status::OK();
}

}  // namespace

InteractionResult RunInteraction(Connection* conn,
                                 const TpcwStatements& statements,
                                 Interaction interaction,
                                 const TpcwScale& scale, Random* rng,
                                 bool snapshot_reads) {
  InteractionResult result;
  result.was_write = IsWriteInteraction(interaction);
  Status status = conn->Begin(snapshot_reads && !result.was_write);
  if (!status.ok()) {
    result.status = status;
    return result;
  }
  switch (interaction) {
    case Interaction::kHome:
      status = Home(conn, statements, scale, rng);
      break;
    case Interaction::kNewProducts:
      status = NewProducts(conn, statements, rng);
      break;
    case Interaction::kBestSellers:
      status = BestSellers(conn, statements, scale);
      break;
    case Interaction::kProductDetail:
      status = ProductDetail(conn, statements, scale, rng);
      break;
    case Interaction::kSearchBySubject:
      status = SearchBySubject(conn, statements, rng);
      break;
    case Interaction::kSearchByTitle:
      status = SearchByTitle(conn, statements, rng);
      break;
    case Interaction::kShoppingCartAdd:
      status = ShoppingCartAdd(conn, statements, scale, rng);
      break;
    case Interaction::kBuyConfirm:
      status = BuyConfirm(conn, statements, scale, rng);
      break;
    case Interaction::kOrderInquiry:
      status = OrderInquiry(conn, statements, scale, rng);
      break;
    case Interaction::kAdminUpdate:
      status = AdminUpdate(conn, statements, scale, rng);
      break;
  }
  if (status.ok()) {
    result.status = conn->Commit();
  } else {
    if (conn->in_transaction()) (void)conn->Abort();
    result.status = status;
  }
  return result;
}

InteractionResult RunInteraction(Connection* conn, Interaction interaction,
                                 const TpcwScale& scale, Random* rng,
                                 bool snapshot_reads) {
  // The statement set lives in the controller's shared registry, so this
  // fetch is a handful of map lookups after the first call.
  auto stmts_or = PrepareTpcwStatements(conn);
  if (!stmts_or.ok()) {
    InteractionResult result;
    result.status = stmts_or.status();
    result.was_write = IsWriteInteraction(interaction);
    return result;
  }
  return RunInteraction(conn, *stmts_or, interaction, scale, rng,
                        snapshot_reads);
}

}  // namespace mtdb::workload
