#ifndef MTDB_WORKLOAD_TPCW_H_
#define MTDB_WORKLOAD_TPCW_H_

#include <string>
#include <vector>

#include "src/cluster/cluster_controller.h"
#include "src/common/random.h"

namespace mtdb::workload {

// Scale of one TPC-W tenant database. TPC-W's full schema is scaled down to
// keep experiment wall time reasonable; row counts of the dependent tables
// derive from items/customers as in the benchmark spec.
struct TpcwScale {
  int64_t items = 100;
  int64_t customers = 200;
  int64_t initial_orders = 100;
  uint64_t seed = 42;

  int64_t authors() const { return std::max<int64_t>(items / 4, 1); }
  int64_t addresses() const { return customers * 2; }
};

// Creates the ten TPC-W tables (with indexes) on every replica of `db_name`.
Status CreateTpcwSchema(ClusterController* controller,
                        const std::string& db_name);

// Bulk-loads generated data on every replica of `db_name`.
Status LoadTpcwData(ClusterController* controller, const std::string& db_name,
                    const TpcwScale& scale);

// The three TPC-W workload mixes (browse% / order%): browsing 95/5,
// shopping 80/20, ordering 50/50.
enum class TpcwMix { kBrowsing, kShopping, kOrdering };

std::string_view TpcwMixName(TpcwMix mix);

// The web interactions, reduced to their database transactions.
enum class Interaction {
  kHome,
  kNewProducts,
  kBestSellers,
  kProductDetail,
  kSearchBySubject,
  kSearchByTitle,
  kShoppingCartAdd,
  kBuyConfirm,
  kOrderInquiry,
  kAdminUpdate,
};

// Draws an interaction according to the given mix.
Interaction DrawInteraction(TpcwMix mix, Random* rng);

// True for interactions whose transaction performs updates.
bool IsWriteInteraction(Interaction interaction);

// Outcome of running one interaction.
struct InteractionResult {
  Status status;
  bool was_write = false;
};

// Runs one interaction as a single transaction on the connection. On error
// the transaction has already been rolled back.
InteractionResult RunInteraction(Connection* conn, Interaction interaction,
                                 const TpcwScale& scale, Random* rng);

}  // namespace mtdb::workload

#endif  // MTDB_WORKLOAD_TPCW_H_
