#ifndef MTDB_WORKLOAD_TPCW_H_
#define MTDB_WORKLOAD_TPCW_H_

#include <memory>
#include <string>
#include <vector>

#include "src/cluster/cluster_controller.h"
#include "src/common/random.h"

namespace mtdb::workload {

// Scale of one TPC-W tenant database. TPC-W's full schema is scaled down to
// keep experiment wall time reasonable; row counts of the dependent tables
// derive from items/customers as in the benchmark spec.
struct TpcwScale {
  int64_t items = 100;
  int64_t customers = 200;
  int64_t initial_orders = 100;
  uint64_t seed = 42;

  int64_t authors() const { return std::max<int64_t>(items / 4, 1); }
  int64_t addresses() const { return customers * 2; }
};

// Creates the ten TPC-W tables (with indexes) on every replica of `db_name`.
Status CreateTpcwSchema(ClusterController* controller,
                        const std::string& db_name);

// Bulk-loads generated data on every replica of `db_name`.
Status LoadTpcwData(ClusterController* controller, const std::string& db_name,
                    const TpcwScale& scale);

// The three TPC-W workload mixes (browse% / order%): browsing 95/5,
// shopping 80/20, ordering 50/50.
enum class TpcwMix { kBrowsing, kShopping, kOrdering };

std::string_view TpcwMixName(TpcwMix mix);

// The web interactions, reduced to their database transactions.
enum class Interaction {
  kHome,
  kNewProducts,
  kBestSellers,
  kProductDetail,
  kSearchBySubject,
  kSearchByTitle,
  kShoppingCartAdd,
  kBuyConfirm,
  kOrderInquiry,
  kAdminUpdate,
};

// Draws an interaction according to the given mix.
Interaction DrawInteraction(TpcwMix mix, Random* rng);

// True for interactions whose transaction performs updates.
bool IsWriteInteraction(Interaction interaction);

// Outcome of running one interaction.
struct InteractionResult {
  Status status;
  bool was_write = false;
};

// The fixed statement set behind the TPC-W interactions, prepared once and
// executed many times with bound parameters (plan-once/execute-many). The
// members are shared registry entries, so copying this struct is cheap and
// every session driving the same database reuses the same plans.
struct TpcwStatements {
  std::shared_ptr<PreparedStatement> home_customer;
  std::shared_ptr<PreparedStatement> home_item;
  std::shared_ptr<PreparedStatement> new_products;
  std::shared_ptr<PreparedStatement> best_sellers;
  std::shared_ptr<PreparedStatement> product_detail;
  std::shared_ptr<PreparedStatement> search_subject;
  std::shared_ptr<PreparedStatement> search_title;
  std::shared_ptr<PreparedStatement> cart_get;
  std::shared_ptr<PreparedStatement> cart_insert;
  std::shared_ptr<PreparedStatement> cart_line_get;
  std::shared_ptr<PreparedStatement> cart_line_insert;
  std::shared_ptr<PreparedStatement> cart_line_update;
  std::shared_ptr<PreparedStatement> buy_stock;
  std::shared_ptr<PreparedStatement> buy_update_item;
  std::shared_ptr<PreparedStatement> buy_insert_line;
  std::shared_ptr<PreparedStatement> buy_insert_order;
  std::shared_ptr<PreparedStatement> buy_insert_cc;
  std::shared_ptr<PreparedStatement> buy_update_customer;
  std::shared_ptr<PreparedStatement> order_last;
  std::shared_ptr<PreparedStatement> order_lines;
  std::shared_ptr<PreparedStatement> admin_update;
};

// Prepares the full TPC-W statement set through `conn`.
Result<TpcwStatements> PrepareTpcwStatements(Connection* conn);

// Runs one interaction as a single transaction on the connection, executing
// the prepared statement set. On error the transaction has already been
// rolled back. With `snapshot_reads`, read-only interactions (the browse
// side of the mix) run as MVCC snapshot transactions — lock-free reads
// pinned to one replica; write interactions always use strict 2PL.
InteractionResult RunInteraction(Connection* conn,
                                 const TpcwStatements& statements,
                                 Interaction interaction,
                                 const TpcwScale& scale, Random* rng,
                                 bool snapshot_reads = false);

// Convenience overload that fetches the statement set from the controller's
// shared registry first (cheap after the first call). Long-running drivers
// should prepare once and use the overload above.
InteractionResult RunInteraction(Connection* conn, Interaction interaction,
                                 const TpcwScale& scale, Random* rng,
                                 bool snapshot_reads = false);

}  // namespace mtdb::workload

#endif  // MTDB_WORKLOAD_TPCW_H_
